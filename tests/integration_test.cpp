// End-to-end integration: small-scale versions of the paper's experiments,
// asserting the qualitative shape of the published results. Designs are
// synthesized with the power-recovery (slack-relaxation) pass, like the
// paper's commercial-tool circuits.
#include <gtest/gtest.h>

#include "core/error_model.h"
#include "experiments/runner.h"
#include "experiments/trace_collector.h"
#include "predict/bit_predictor.h"

namespace {

using oisa::circuits::SynthesisOptions;
using oisa::circuits::SynthesizedDesign;
using oisa::experiments::RunOptions;
using oisa::timing::CellLibrary;

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::generic65();
  return l;
}

SynthesizedDesign synthRelaxed(const oisa::core::IsaConfig& cfg) {
  SynthesisOptions options;
  options.relaxSlack = true;
  return synthesize(cfg, lib(), options);
}

TEST(IntegrationTest, ExactAdderFallsToTimingErrorsAtFivePercentCpr) {
  // Fig. 9a: at 5% CPR the overclocked exact adder suffers MSB-weighted
  // timing errors that dwarf the joint error of high-accuracy ISAs.
  std::vector<SynthesizedDesign> designs;
  designs.push_back(synthRelaxed(oisa::core::makeIsa(16, 2, 1, 6)));
  designs.push_back(synthRelaxed(oisa::core::makeExact(32)));
  RunOptions options;
  options.cycles = 40000;  // exact-adder failures at 5% CPR are rare events
  const double cprs[] = {5.0};
  const auto rows = runErrorCombination(designs, cprs, options);
  ASSERT_EQ(rows.size(), 2u);
  const auto& isa = rows[0];
  const auto& exact = rows[1];
  EXPECT_EQ(exact.rmsRelStruct, 0.0);
  EXPECT_GT(exact.timingErrorRate, 0.0) << "exact adder must miss 0.285 ns";
  EXPECT_GT(exact.rmsRelJoint, isa.rmsRelJoint)
      << "paper: the overclocked exact adder is far worse than "
         "high-accuracy ISAs at 5% CPR";
}

TEST(IntegrationTest, LowAccuracyIsaIsRobustToMildOverclock) {
  // Fig. 9a: 8-bit-block ISAs have negligible timing error at 5% CPR;
  // their joint error is dominated by the structural contribution.
  const auto design = synthRelaxed(oisa::core::makeIsa(8, 0, 0, 4));
  RunOptions options;
  options.cycles = 6000;
  const double cprs[] = {5.0};
  const auto rows = runErrorCombination({design}, cprs, options);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(rows[0].rmsRelStruct, 0.0);
  EXPECT_LT(rows[0].rmsRelTiming, 0.25 * rows[0].rmsRelStruct)
      << "timing contribution must be negligible against structural";
  EXPECT_NEAR(rows[0].rmsRelJoint, rows[0].rmsRelStruct,
              0.3 * rows[0].rmsRelStruct);
}

TEST(IntegrationTest, TimingErrorsGrowWithCpr) {
  // Fig. 9: more clock-period reduction, more timing errors. Error *rates*
  // are statistically stable even at moderate cycle counts (RMS is
  // dominated by rare outliers).
  const auto design = synthRelaxed(oisa::core::makeExact(32));
  RunOptions options;
  options.cycles = 6000;
  const double cprs[] = {5.0, 10.0, 15.0};
  const auto rows = runErrorCombination({design}, cprs, options);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_LT(rows[0].timingErrorRate, rows[1].timingErrorRate);
  EXPECT_LT(rows[1].timingErrorRate, rows[2].timingErrorRate);
}

TEST(IntegrationTest, SpeculativeSplitBeatsExactUnderDeepOverclock) {
  // The paper's headline: the speculative structure splits the critical
  // path, so a compensated ISA under 15% CPR keeps a much smaller joint
  // error than the overclocked exact adder.
  std::vector<SynthesizedDesign> designs;
  designs.push_back(synthRelaxed(oisa::core::makeIsa(16, 2, 1, 6)));
  designs.push_back(synthRelaxed(oisa::core::makeExact(32)));
  RunOptions options;
  options.cycles = 8000;
  const double cprs[] = {15.0};
  const auto rows = runErrorCombination(designs, cprs, options);
  EXPECT_LT(rows[0].rmsRelJoint, rows[1].rmsRelJoint);
  // The exact adder's errors concentrate on high-significance bits: its
  // timing RMS is orders of magnitude above the ISA's.
  EXPECT_LT(rows[0].rmsRelTiming * 10.0, rows[1].rmsRelTiming);
}

TEST(IntegrationTest, PredictorTracksOverclockedIsa) {
  // Figs. 7-8 at small scale: train on an aggressive overclock of a design
  // with real timing errors; the model should stay in the paper's accuracy
  // ballpark (ABPER of order 1e-2 or better) and beat "always correct".
  const auto design = synthRelaxed(oisa::core::makeIsa(16, 2, 0, 4));
  const double period = oisa::experiments::overclockedPeriodNs(0.3, 15.0);

  auto train = oisa::experiments::makeWorkload("uniform", 32, 101);
  auto test = oisa::experiments::makeWorkload("uniform", 32, 202);
  const auto trainTrace =
      oisa::experiments::collectTrace(design, period, *train, 4000);
  const auto testTrace =
      oisa::experiments::collectTrace(design, period, *test, 2000);

  // There must actually be timing errors to learn.
  std::uint64_t errors = 0;
  for (const auto& rec : testTrace) errors += rec.silver != rec.gold;
  ASSERT_GT(errors, 0u);

  oisa::predict::PredictorParams params;
  params.forest.treeCount = 8;
  oisa::predict::BitLevelPredictor predictor(32, params);
  predictor.fit(trainTrace);
  const auto eval = predictor.evaluate(testTrace);

  oisa::predict::PredictorParams naiveParams;
  naiveParams.model = oisa::predict::ModelKind::Majority;
  oisa::predict::BitLevelPredictor naive(32, naiveParams);
  naive.fit(trainTrace);
  const auto naiveEval = naive.evaluate(testTrace);

  // Paper ballpark at an aggressive overclock, and no collapse relative to
  // the constant-prediction baseline (at very high flip rates the forest
  // may tie with it rather than beat it).
  EXPECT_LT(eval.abper, 0.05);
  EXPECT_LE(eval.abper, naiveEval.abper * 1.3 + 1e-12);
}

TEST(IntegrationTest, BitDistributionShapeMatchesFigure10) {
  // ISA (8,0,0,4) at 15% CPR: structural errors sit left of the path
  // boundaries (balanced bands), timing errors are spread across paths
  // rather than concentrated on the MSBs.
  const auto design = synthRelaxed(oisa::core::makeIsa(8, 0, 0, 4));
  RunOptions options;
  options.cycles = 12000;
  const auto dist = runBitDistribution(design, 15.0, options);

  // Structural: nothing below bit 4 (first path exact; fault contributions
  // land at blockSize - reduction and above).
  for (const int pos : {0, 1, 2, 3}) {
    EXPECT_EQ(dist.structuralRate[static_cast<std::size_t>(pos)], 0.0);
  }
  double structTotal = 0.0;
  for (const double r : dist.structuralRate) structTotal += r;
  EXPECT_GT(structTotal, 0.0);

  // Timing errors exist at 15% CPR for this design and are not confined to
  // the top 8 bits (conventional-adder behavior): some flip below bit 24.
  double timingLow = 0.0, timingTotal = 0.0;
  for (std::size_t pos = 0; pos < dist.timingRate.size(); ++pos) {
    timingTotal += dist.timingRate[pos];
    if (pos < 24) timingLow += dist.timingRate[pos];
  }
  EXPECT_GT(timingTotal, 0.0);
  EXPECT_GT(timingLow, 0.0);
}

TEST(IntegrationTest, JointDecompositionHoldsOnRealTraces) {
  // E_joint == E_struct + E_timing must hold cycle-by-cycle on real
  // gate-level traces, not just algebraically.
  const auto design = synthRelaxed(oisa::core::makeIsa(16, 1, 0, 2));
  auto workload = oisa::experiments::makeWorkload("uniform", 32, 77);
  const auto trace = oisa::experiments::collectTrace(
      design, oisa::experiments::overclockedPeriodNs(0.3, 15.0), *workload,
      1500);
  for (const auto& rec : trace) {
    const auto s = oisa::core::decomposeErrors(oisa::core::OutputTriple{
        rec.diamondValue(32), rec.goldValue(32), rec.silverValue(32)});
    EXPECT_EQ(s.eJoint, s.eStruct + s.eTiming);
    EXPECT_EQ(rec.goldValue(32),
              static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(rec.diamondValue(32)) +
                  s.eStruct));
  }
}

}  // namespace
