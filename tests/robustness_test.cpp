// Robustness boundaries: every malformed input in tests/data/malformed/
// comes back as a diagnostic Status (never a crash, never UB), model
// files detect any single-byte corruption, the Verilog import/export
// round-trip is functionally exact, and the file.open fault-injection
// site drives the IoError paths.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fault_inject.h"
#include "core/status.h"
#include "ml/dataset.h"
#include "ml/random_forest.h"
#include "ml/serialize.h"
#include "netlist/bench_io.h"
#include "netlist/equivalence.h"
#include "netlist/netlist.h"
#include "netlist/verilog.h"

namespace {

using oisa::core::ScopedFaultPlan;
using oisa::core::StatusCode;
using oisa::netlist::GateKind;
using oisa::netlist::Netlist;

std::string dataPath(const std::string& name) {
  return std::string(OISA_TEST_DATA_DIR) + "/malformed/" + name;
}

// --- .bench corpus ----------------------------------------------------

struct CorpusCase {
  const char* file;
  const char* expectInMessage;  ///< diagnostic must mention this
};

TEST(MalformedBenchTest, EveryCorpusFileReturnsDiagnosticStatus) {
  const std::vector<CorpusCase> corpus = {
      {"unterminated.bench", "expected"},
      {"duplicate_net.bench", "defined twice"},
      {"self_ref.bench", "cycle"},
      {"undefined.bench", "never defined"},
      {"dff.bench", "sequential"},
      {"wide_gate.bench", "absurd fan-in"},
      {"garbage.bin", ""},
  };
  for (const CorpusCase& c : corpus) {
    const auto result = oisa::netlist::readBenchFileStatus(dataPath(c.file));
    ASSERT_FALSE(result.isOk()) << c.file << " should have been rejected";
    EXPECT_EQ(result.status().code(), StatusCode::InvalidInput) << c.file;
    EXPECT_FALSE(result.status().message().empty()) << c.file;
    if (c.expectInMessage[0] != '\0') {
      EXPECT_NE(result.status().message().find(c.expectInMessage),
                std::string::npos)
          << c.file << ": got '" << result.status().message() << "'";
    }
  }
}

TEST(MalformedBenchTest, ValidBenchStillParses) {
  // Control: the harness itself accepts well-formed text (ISCAS-85 c17).
  const char* c17 =
      "INPUT(G1)\nINPUT(G2)\nINPUT(G3)\nINPUT(G6)\nINPUT(G7)\n"
      "OUTPUT(G22)\nOUTPUT(G23)\n"
      "G10 = NAND(G1, G3)\nG11 = NAND(G3, G6)\nG16 = NAND(G2, G11)\n"
      "G19 = NAND(G11, G7)\nG22 = NAND(G10, G16)\nG23 = NAND(G16, G19)\n";
  const auto result = oisa::netlist::readBenchStringStatus(c17, "c17");
  ASSERT_TRUE(result.isOk()) << result.status().toString();
  EXPECT_EQ(result.value().primaryInputs().size(), 5u);
  EXPECT_EQ(result.value().primaryOutputs().size(), 2u);
}

TEST(MalformedBenchTest, MissingFileIsIoError) {
  const auto result =
      oisa::netlist::readBenchFileStatus(dataPath("does_not_exist.bench"));
  ASSERT_FALSE(result.isOk());
  EXPECT_EQ(result.status().code(), StatusCode::IoError);
}

TEST(MalformedBenchTest, FileOpenInjectionFiresBeforeTheFilesystem) {
  ScopedFaultPlan plan("file.open:*");
  const auto result =
      oisa::netlist::readBenchFileStatus(dataPath("unterminated.bench"));
  ASSERT_FALSE(result.isOk());
  EXPECT_EQ(result.status().code(), StatusCode::IoError);
  EXPECT_NE(result.status().message().find("file.open"), std::string::npos);
}

// --- Verilog corpus and round-trip ------------------------------------

TEST(MalformedVerilogTest, EveryCorpusFileReturnsDiagnosticStatus) {
  const std::vector<CorpusCase> corpus = {
      {"unterminated.v", "endmodule"},
      {"duplicate_net.v", "assigned twice"},
      {"self_ref.v", "cycle"},
      {"bad_literal.v", "literal"},
      {"missing_semicolon.v", ""},
      {"garbage.bin", ""},
  };
  for (const CorpusCase& c : corpus) {
    const auto result = oisa::netlist::readVerilogFile(dataPath(c.file));
    ASSERT_FALSE(result.isOk()) << c.file << " should have been rejected";
    EXPECT_EQ(result.status().code(), StatusCode::InvalidInput) << c.file;
    EXPECT_FALSE(result.status().message().empty()) << c.file;
    if (c.expectInMessage[0] != '\0') {
      EXPECT_NE(result.status().message().find(c.expectInMessage),
                std::string::npos)
          << c.file << ": got '" << result.status().message() << "'";
    }
  }
}

/// A netlist exercising every gate kind writeVerilog can emit.
Netlist allKindsNetlist() {
  Netlist nl("all_kinds");
  const auto a = nl.input("a");
  const auto b = nl.input("b");
  const auto c = nl.input("c");
  const auto inv = nl.gate1(GateKind::Inv, a, "inv");
  const auto buf = nl.gate1(GateKind::Buf, b, "buf_n");
  const auto and2 = nl.gate2(GateKind::And2, a, b, "and2");
  const auto or2 = nl.gate2(GateKind::Or2, inv, c, "or2");
  const auto nand2 = nl.gate2(GateKind::Nand2, a, c, "nand2");
  const auto nor2 = nl.gate2(GateKind::Nor2, b, c, "nor2");
  const auto xor2 = nl.gate2(GateKind::Xor2, a, b, "xor2");
  const auto xnor2 = nl.gate2(GateKind::Xnor2, and2, or2, "xnor2");
  const auto and3 = nl.gate3(GateKind::And3, a, b, c, "and3");
  const auto or3 = nl.gate3(GateKind::Or3, inv, buf, c, "or3");
  const auto aoi = nl.gate3(GateKind::Aoi21, a, b, c, "aoi");
  const auto oai = nl.gate3(GateKind::Oai21, a, b, c, "oai");
  const auto mux = nl.gate3(GateKind::Mux2, nand2, nor2, c, "mux");
  const auto maj = nl.gate3(GateKind::Maj3, a, b, c, "maj");
  const auto k0 = nl.constant(false);
  const auto k1 = nl.constant(true);
  const auto withConst = nl.gate2(GateKind::Or2, k0, xor2, "with_const0");
  const auto withConst1 = nl.gate2(GateKind::And2, k1, xnor2, "with_const1");
  nl.output("y0", and3);
  nl.output("y1", or3);
  nl.output("y2", aoi);
  nl.output("y3", oai);
  nl.output("y4", mux);
  nl.output("y5", maj);
  nl.output("y6", withConst);
  nl.output("y7", withConst1);
  nl.validate();
  return nl;
}

TEST(VerilogRoundTripTest, AllGateKindsSurviveFunctionally) {
  const Netlist original = allKindsNetlist();
  std::ostringstream verilog;
  oisa::netlist::writeVerilog(original, verilog);
  auto reread = oisa::netlist::readVerilogString(verilog.str());
  ASSERT_TRUE(reread.isOk()) << reread.status().toString();
  // Decomposition differs (~(a&b) becomes Inv(And2), not Nand2), so the
  // round-trip contract is functional equivalence, not gate identity.
  const auto eq =
      oisa::netlist::checkEquivalence(original, reread.value());
  EXPECT_TRUE(eq.equivalent) << eq.message;
}

TEST(VerilogRoundTripTest, RereadOutputMatchesPortShape) {
  const Netlist original = allKindsNetlist();
  std::ostringstream verilog;
  oisa::netlist::writeVerilog(original, verilog);
  auto reread = oisa::netlist::readVerilogString(verilog.str());
  ASSERT_TRUE(reread.isOk()) << reread.status().toString();
  EXPECT_EQ(reread.value().primaryInputs().size(),
            original.primaryInputs().size());
  EXPECT_EQ(reread.value().primaryOutputs().size(),
            original.primaryOutputs().size());
  EXPECT_EQ(reread.value().name(), original.name());
}

TEST(VerilogReaderTest, FileOpenInjectionAndMissingFileAreIoErrors) {
  {
    ScopedFaultPlan plan("file.open:*");
    const auto result =
        oisa::netlist::readVerilogFile(dataPath("duplicate_net.v"));
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), StatusCode::IoError);
  }
  const auto missing =
      oisa::netlist::readVerilogFile(dataPath("does_not_exist.v"));
  ASSERT_FALSE(missing.isOk());
  EXPECT_EQ(missing.status().code(), StatusCode::IoError);
}

// --- model-file integrity ---------------------------------------------

oisa::ml::RandomForest trainedForest() {
  // Small deterministic dataset: label = majority(f0, f1, f2).
  oisa::ml::Dataset data(4);
  for (int i = 0; i < 64; ++i) {
    const std::uint8_t f0 = (i >> 0) & 1, f1 = (i >> 1) & 1,
                       f2 = (i >> 2) & 1, f3 = (i >> 3) & 1;
    const std::uint8_t row[4] = {f0, f1, f2, f3};
    data.addRow(row, f0 + f1 + f2 >= 2);
  }
  oisa::ml::RandomForest forest;
  oisa::ml::ForestParams params;
  params.treeCount = 3;
  forest.fit(data, params, 7);
  return forest;
}

TEST(ModelIntegrityTest, RoundTripIsExact) {
  const oisa::ml::RandomForest forest = trainedForest();
  std::stringstream ss;
  oisa::ml::saveForest(forest, ss);
  auto loaded = oisa::ml::readForest(ss);
  ASSERT_TRUE(loaded.isOk()) << loaded.status().toString();
  ASSERT_EQ(loaded.value().trees().size(), forest.trees().size());
}

TEST(ModelIntegrityTest, FlippingAnySingleByteIsDetected) {
  const oisa::ml::RandomForest forest = trainedForest();
  std::ostringstream os;
  oisa::ml::saveForest(forest, os);
  const std::string good = os.str();
  ASSERT_FALSE(good.empty());
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);  // flip one bit of one byte
    if (bad == good) continue;
    std::istringstream is(bad);
    const auto result = oisa::ml::readForest(is);
    ASSERT_FALSE(result.isOk())
        << "byte " << i << " flip went undetected";
    EXPECT_EQ(result.status().code(), StatusCode::Corruption)
        << "byte " << i << ": " << result.status().toString();
  }
}

TEST(ModelIntegrityTest, TruncationAtEveryLengthIsDetected) {
  const oisa::ml::RandomForest forest = trainedForest();
  std::ostringstream os;
  oisa::ml::saveForest(forest, os);
  const std::string good = os.str();
  for (std::size_t len = 0; len < good.size(); ++len) {
    std::istringstream is(good.substr(0, len));
    const auto result = oisa::ml::readForest(is);
    ASSERT_FALSE(result.isOk()) << "truncation at " << len << " undetected";
    EXPECT_EQ(result.status().code(), StatusCode::Corruption) << len;
  }
}

TEST(ModelIntegrityTest, LegacyHeadersAndGarbageStillThrowViaWrappers) {
  // The throwing wrappers keep the pre-Status contract for old callers.
  std::stringstream legacy("tree 1\n0 0 0 0.5\n");
  EXPECT_THROW((void)oisa::ml::loadTree(legacy), std::runtime_error);
  std::stringstream garbage(std::string("\x00\xff\x13garbage", 10));
  EXPECT_THROW((void)oisa::ml::loadForest(garbage), std::runtime_error);
}

TEST(ModelIntegrityTest, EnvelopesConcatenateOnOneStream) {
  // The bit-level predictor stores one forest per output bit back to
  // back; sequential reads must consume exactly one envelope each.
  const oisa::ml::RandomForest forest = trainedForest();
  std::stringstream ss;
  oisa::ml::saveForest(forest, ss);
  oisa::ml::saveForest(forest, ss);
  auto first = oisa::ml::readForest(ss);
  auto second = oisa::ml::readForest(ss);
  ASSERT_TRUE(first.isOk()) << first.status().toString();
  ASSERT_TRUE(second.isOk()) << second.status().toString();
  EXPECT_EQ(first.value().trees().size(), second.value().trees().size());
}

// --- fault-plan hygiene ------------------------------------------------

TEST(FaultPlanHygieneTest, ArmedButNeverHitSitesAreListed) {
  namespace fi = oisa::core::fault_inject;
  // A plan with a typo'd site name would silently inject nothing — the
  // registry tracks which armed rules no shouldFail() ever reached (the
  // same list the at-exit warning prints).
  ScopedFaultPlan plan("file.open:1,worker.spwan:*");  // note the typo
  EXPECT_EQ(fi::armedUnhitSites(),
            (std::vector<std::string>{"file.open", "worker.spwan"}));
  // Hitting a site removes it from the unhit list, even when this
  // particular hit was not scheduled to fail.
  (void)fi::shouldFail(fi::kFileOpen);
  EXPECT_EQ(fi::armedUnhitSites(),
            (std::vector<std::string>{"worker.spwan"}));
  EXPECT_EQ(fi::hitCount(fi::kFileOpen), 1u);
}

TEST(FaultPlanHygieneTest, ResetClearsTheUnhitList) {
  namespace fi = oisa::core::fault_inject;
  {
    ScopedFaultPlan plan("checkpoint.write:3");
    EXPECT_FALSE(fi::armedUnhitSites().empty());
  }
  // Disarmed: nothing is pending, so nothing can warn at exit.
  EXPECT_TRUE(fi::armedUnhitSites().empty());
}

}  // namespace
