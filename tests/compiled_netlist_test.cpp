// CompiledNetlist edge cases: dangling (reader-less) nets, one net feeding
// several pins of the same gate (the merged pin-mask CSR path), single-gate
// and port-only designs, and the undriven-net compile guard.
#include <gtest/gtest.h>

#include <stdexcept>

#include "netlist/batch_evaluator.h"
#include "netlist/compiled_netlist.h"
#include "netlist/evaluator.h"
#include "netlist/gate.h"
#include "netlist/netlist.h"

namespace {

using oisa::netlist::BatchEvaluator;
using oisa::netlist::CompiledNetlist;
using oisa::netlist::GateKind;
using oisa::netlist::Netlist;
using oisa::netlist::NetId;

TEST(CompiledNetlistTest, DanglingNetsCompileWithEmptyFanout) {
  // `spare` drives nothing and is not an output; `tap` is an output read
  // by nobody. Both must compile with empty reader ranges and correct
  // settled state.
  Netlist nl("dangle");
  const NetId a = nl.input("a");
  const NetId spare = nl.gate1(GateKind::Inv, a, "spare");
  const NetId tap = nl.gate1(GateKind::Inv, a, "tap");
  nl.output("tap", tap);
  nl.output("y", nl.gate1(GateKind::Buf, a, "y"));

  const auto compiled = CompiledNetlist::compile(nl);
  EXPECT_TRUE(compiled->acyclic());
  const auto offsets = compiled->fanoutOffsets();
  EXPECT_EQ(offsets[spare.value + 1] - offsets[spare.value], 0u);
  EXPECT_EQ(offsets[tap.value + 1] - offsets[tap.value], 0u);
  // All inputs low: both inverters settle high.
  EXPECT_EQ(compiled->zeroState()[spare.value], 1u);
  EXPECT_EQ(compiled->zeroState()[tap.value], 1u);

  const BatchEvaluator eval(compiled);
  const std::uint64_t aWord = 0xf0f0f0f0f0f0f0f0ull;
  const auto values = eval.evaluate(std::vector<std::uint64_t>{aWord});
  EXPECT_EQ(values[spare.value], ~aWord);
  EXPECT_EQ(values[tap.value], ~aWord);
  EXPECT_EQ(values[nl.primaryOutputs()[1].value], aWord);
}

TEST(CompiledNetlistTest, MergedPinMasksEvaluateCorrectly) {
  // One net on several pins of the same gate must become a single CSR
  // entry with the combined minterm mask, and evaluation must match the
  // scalar evaluator on every pattern.
  Netlist nl("merge");
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId both = nl.gate2(GateKind::And2, a, a, "aa");    // pins 0+1
  const NetId mux = nl.gate3(GateKind::Mux2, a, b, a, "m");   // pins 0+2
  const NetId maj = nl.gate3(GateKind::Maj3, b, b, b, "mmm"); // pins 0+1+2
  nl.output("both", both);
  nl.output("mux", mux);
  nl.output("maj", maj);

  const auto compiled = CompiledNetlist::compile(nl);
  const auto offsets = compiled->fanoutOffsets();
  const auto readers = compiled->readers();
  // a feeds gate 0 (pins 0,1) and gate 1 (pins 0,2): two merged entries.
  ASSERT_EQ(offsets[a.value + 1] - offsets[a.value], 2u);
  EXPECT_EQ(readers[offsets[a.value]] & 7u, 0b011u);
  EXPECT_EQ(readers[offsets[a.value] + 1] & 7u, 0b101u);
  // b feeds gate 1 (pin 1) and gate 2 (pins 0,1,2).
  ASSERT_EQ(offsets[b.value + 1] - offsets[b.value], 2u);
  EXPECT_EQ(readers[offsets[b.value]] & 7u, 0b010u);
  EXPECT_EQ(readers[offsets[b.value] + 1] & 7u, 0b111u);

  const oisa::netlist::Evaluator scalar(nl);
  const BatchEvaluator batch(compiled);
  for (std::uint64_t p = 0; p < 4; ++p) {
    EXPECT_EQ(batch.evaluateWords(std::vector<std::uint64_t>{p})[0],
              scalar.evaluateWord(p))
        << "pattern " << p;
  }
}

TEST(CompiledNetlistTest, SingleGateDesigns) {
  for (const GateKind kind :
       {GateKind::Inv, GateKind::Buf, GateKind::Nand2}) {
    Netlist nl("one");
    const int arity = oisa::netlist::gateArity(kind);
    std::vector<NetId> ins;
    for (int i = 0; i < arity; ++i) {
      ins.push_back(nl.input("i" + std::to_string(i)));
    }
    nl.output("y", nl.gate(kind, ins, "y"));
    const auto compiled = CompiledNetlist::compile(nl);
    EXPECT_TRUE(compiled->acyclic());
    EXPECT_EQ(compiled->gateCount(), 1u);
    ASSERT_EQ(compiled->topologicalOrder().size(), 1u);
    EXPECT_EQ(compiled->topologicalOrder()[0], 0u);
    // Settled all-low state matches the gate function at minterm 0.
    EXPECT_EQ(compiled->zeroState()[compiled->gate(0).out],
              oisa::netlist::evalGate(kind, false, false, false) ? 1u : 0u);
  }
}

TEST(CompiledNetlistTest, ConstantOnlyDesignCompiles) {
  // No primary inputs at all: a lone constant driver feeding the output.
  Netlist nl("const");
  nl.output("y", nl.constant(true));
  const auto compiled = CompiledNetlist::compile(nl);
  EXPECT_TRUE(compiled->acyclic());
  EXPECT_EQ(compiled->inputNets().size(), 0u);
  ASSERT_EQ(compiled->outputNets().size(), 1u);
  EXPECT_EQ(compiled->zeroState()[compiled->outputNets()[0]], 1u);
  const BatchEvaluator eval(compiled);
  const auto out = eval.evaluateOutputs(std::span<const std::uint64_t>{});
  EXPECT_EQ(out[0], ~std::uint64_t{0});
}

TEST(CompiledNetlistTest, PrimaryInputAsOutputPassesThrough) {
  // An output net that is itself a primary input (no gates at all).
  Netlist nl("wire");
  const NetId a = nl.input("a");
  nl.output("y", a);
  const auto compiled = CompiledNetlist::compile(nl);
  EXPECT_EQ(compiled->gateCount(), 0u);
  EXPECT_TRUE(compiled->acyclic());
  const BatchEvaluator eval(compiled);
  const std::uint64_t w = 0x123456789abcdef0ull;
  EXPECT_EQ(eval.evaluateOutputs(std::vector<std::uint64_t>{w})[0], w);
}

TEST(CompiledNetlistTest, SingleGateCycleCompilesAsCyclic) {
  // Smallest possible cycle: one gate rewired to read its own output.
  // The compile must succeed with acyclic() == false, an empty order and
  // an all-zero settled state, and the functional evaluator must refuse.
  Netlist nl("loop");
  const NetId a = nl.input("a");
  const NetId y = nl.gate2(GateKind::Or2, a, a, "y");
  nl.output("y", y);
  nl.replaceGateInput(oisa::netlist::GateId{0}, 1, y);
  const auto compiled = CompiledNetlist::compile(nl);
  EXPECT_FALSE(compiled->acyclic());
  EXPECT_TRUE(compiled->topologicalOrder().empty());
  EXPECT_EQ(compiled->zeroState()[y.value], 0u);
  EXPECT_THROW(BatchEvaluator{compiled}, std::runtime_error);
}

}  // namespace
