// Checkpoint subsystem: payload codec exactness, snapshot file
// integrity (any flipped byte or truncation is detected), torn-write
// recovery via fault injection, and interrupted-campaign resume that is
// byte-identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "circuits/synthesis.h"
#include "core/fault_inject.h"
#include "core/isa_config.h"
#include "core/status.h"
#include "experiments/checkpoint.h"
#include "experiments/grid_scheduler.h"
#include "experiments/runner.h"
#include "timing/cell_library.h"

namespace {

using oisa::core::ScopedFaultPlan;
using oisa::core::StatusCode;
using oisa::experiments::CampaignCheckpoint;
using oisa::experiments::CampaignFingerprint;
using oisa::experiments::CheckpointOptions;
using oisa::experiments::GridCheckpoint;
using oisa::experiments::PayloadReader;
using oisa::experiments::PayloadWriter;

std::string tempPath(const std::string& name) {
  return testing::TempDir() + "oisa_ckpt_" + name;
}

std::string readFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void writeFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- payload codec ----------------------------------------------------

TEST(PayloadCodecTest, RoundTripIsByteExact) {
  PayloadWriter w;
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f64(3.141592653589793);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.str("design (8,0,0,4)");
  w.str("");
  const std::string bytes = w.take();

  PayloadReader r(bytes);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  const double negZero = r.f64();
  EXPECT_EQ(negZero, 0.0);
  EXPECT_TRUE(std::signbit(negZero));  // bit pattern, not value, survived
  EXPECT_TRUE(std::isnan(r.f64()));
  EXPECT_EQ(r.str(), "design (8,0,0,4)");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.atEnd());
}

TEST(PayloadCodecTest, TruncatedReadsTripTheStickyError) {
  PayloadWriter w;
  w.u64(42);
  w.str("hello");
  const std::string bytes = w.take();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::string truncated = bytes.substr(0, len);
    PayloadReader r(truncated);  // reader borrows; keep the bytes alive
    (void)r.u64();
    (void)r.str();
    EXPECT_FALSE(r.ok() && r.atEnd()) << "length " << len;
  }
}

// --- fingerprint ------------------------------------------------------

TEST(FingerprintTest, SensitiveToEveryMixedField) {
  const auto base = CampaignFingerprint("pipeline").mix("d1").mix(
      std::uint64_t{100});
  EXPECT_NE(base.digest(),
            CampaignFingerprint("pipeline2").mix("d1").mix(std::uint64_t{100})
                .digest());
  EXPECT_NE(base.digest(),
            CampaignFingerprint("pipeline").mix("d2").mix(std::uint64_t{100})
                .digest());
  EXPECT_NE(base.digest(),
            CampaignFingerprint("pipeline").mix("d1").mix(std::uint64_t{101})
                .digest());
  // Same inputs => same digest (it is a pure function).
  EXPECT_EQ(base.digest(),
            CampaignFingerprint("pipeline").mix("d1").mix(std::uint64_t{100})
                .digest());
  // Length-prefixed strings: ("ab","c") and ("a","bc") must differ.
  EXPECT_NE(CampaignFingerprint("p").mix("ab").mix("c").digest(),
            CampaignFingerprint("p").mix("a").mix("bc").digest());
}

// --- snapshot file integrity ------------------------------------------

GridCheckpoint sampleCheckpoint() {
  GridCheckpoint ckpt(/*fingerprint=*/0xFEEDFACEull, /*cellCount=*/6);
  for (std::uint64_t cell : {0ull, 2ull, 5ull}) {
    PayloadWriter w;
    w.u64(cell * 17);
    w.f64(1.5 * static_cast<double>(cell));
    w.str("cell" + std::to_string(cell));
    ckpt.record(cell, w.take());
  }
  return ckpt;
}

TEST(GridCheckpointTest, SaveLoadRoundTrip) {
  const std::string path = tempPath("roundtrip.bin");
  const GridCheckpoint original = sampleCheckpoint();
  ASSERT_TRUE(original.saveTo(path).isOk());
  auto loaded = GridCheckpoint::loadFrom(path);
  ASSERT_TRUE(loaded.isOk()) << loaded.status().toString();
  EXPECT_EQ(loaded.value().fingerprint(), 0xFEEDFACEull);
  EXPECT_EQ(loaded.value().cellCount(), 6u);
  EXPECT_EQ(loaded.value().completedCells(), 3u);
  for (std::uint64_t cell : {0ull, 2ull, 5ull}) {
    ASSERT_NE(loaded.value().payload(cell), nullptr) << cell;
    EXPECT_EQ(*loaded.value().payload(cell), *original.payload(cell));
  }
  EXPECT_EQ(loaded.value().payload(1), nullptr);
  std::remove(path.c_str());
}

TEST(GridCheckpointTest, FlippingAnyByteIsDetected) {
  const std::string path = tempPath("flip.bin");
  ASSERT_TRUE(sampleCheckpoint().saveTo(path).isOk());
  const std::string good = readFileBytes(path);
  ASSERT_GT(good.size(), 30u);
  const std::string badPath = tempPath("flip_bad.bin");
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    writeFileBytes(badPath, bad);
    const auto result = GridCheckpoint::loadFrom(badPath);
    ASSERT_FALSE(result.isOk()) << "byte " << i << " flip undetected";
    EXPECT_EQ(result.status().code(), StatusCode::Corruption) << "byte " << i;
  }
  std::remove(path.c_str());
  std::remove(badPath.c_str());
}

TEST(GridCheckpointTest, TruncationAtEveryLengthIsDetected) {
  const std::string path = tempPath("trunc.bin");
  ASSERT_TRUE(sampleCheckpoint().saveTo(path).isOk());
  const std::string good = readFileBytes(path);
  const std::string badPath = tempPath("trunc_bad.bin");
  for (std::size_t len = 0; len < good.size(); ++len) {
    writeFileBytes(badPath, good.substr(0, len));
    const auto result = GridCheckpoint::loadFrom(badPath);
    ASSERT_FALSE(result.isOk()) << "truncation at " << len << " undetected";
    EXPECT_EQ(result.status().code(), StatusCode::Corruption) << len;
  }
  std::remove(path.c_str());
  std::remove(badPath.c_str());
}

TEST(GridCheckpointTest, MissingFileIsIoErrorAndReadInjectionIsCorruption) {
  const auto missing = GridCheckpoint::loadFrom(tempPath("nope.bin"));
  ASSERT_FALSE(missing.isOk());
  EXPECT_EQ(missing.status().code(), StatusCode::IoError);

  const std::string path = tempPath("readfault.bin");
  ASSERT_TRUE(sampleCheckpoint().saveTo(path).isOk());
  {
    ScopedFaultPlan plan("checkpoint.read:*");
    const auto result = GridCheckpoint::loadFrom(path);
    ASSERT_FALSE(result.isOk());
    EXPECT_EQ(result.status().code(), StatusCode::Corruption);
  }
  std::remove(path.c_str());
}

TEST(GridCheckpointTest, TornWriteInjectionLeavesADetectedCorpse) {
  const std::string path = tempPath("torn.bin");
  {
    // The injection makes saveTo skip the tmp+rename dance and write
    // only half the serialized bytes straight to the final path — the
    // moral equivalent of power loss on a non-atomic filesystem.
    ScopedFaultPlan plan("checkpoint.write:*");
    const auto status = sampleCheckpoint().saveTo(path);
    EXPECT_FALSE(status.isOk());
  }
  const auto result = GridCheckpoint::loadFrom(path);
  ASSERT_FALSE(result.isOk());
  EXPECT_EQ(result.status().code(), StatusCode::Corruption);
  // A resuming campaign treats that corpse as "start fresh", not a crash.
  CheckpointOptions options;
  options.path = path;
  options.resume = true;
  CampaignCheckpoint campaign(options, /*fingerprint=*/1, /*cellCount=*/4);
  EXPECT_EQ(campaign.resumedCells(), 0u);
  std::remove(path.c_str());
}

// --- shard-snapshot merging --------------------------------------------

TEST(GridCheckpointTest, CellIndicesAreAscending) {
  GridCheckpoint ckpt(1, 10);
  for (std::uint64_t cell : {7ull, 1ull, 4ull}) ckpt.record(cell, "x");
  EXPECT_EQ(ckpt.cellIndices(), (std::vector<std::uint64_t>{1, 4, 7}));
  EXPECT_TRUE(GridCheckpoint().cellIndices().empty());
}

TEST(GridCheckpointTest, MergeFromUnionsAndOtherWinsConflicts) {
  GridCheckpoint a(1, 8);
  a.record(0, "a0");
  a.record(3, "a3");
  GridCheckpoint b(1, 8);
  b.record(1, "b1");
  b.record(3, "b3");  // conflict with a
  a.mergeFrom(b);
  EXPECT_EQ(a.completedCells(), 3u);
  EXPECT_EQ(*a.payload(0), "a0");
  EXPECT_EQ(*a.payload(1), "b1");
  EXPECT_EQ(*a.payload(3), "b3");  // other wins
}

// Saves one shard snapshot holding `cells` of an 8-cell grid.
std::string writeShardSnapshot(const std::string& name,
                               std::uint64_t fingerprint,
                               std::uint64_t cellCount,
                               const std::vector<std::uint64_t>& cells) {
  GridCheckpoint ckpt(fingerprint, cellCount);
  for (const std::uint64_t cell : cells) {
    ckpt.record(cell, "cell" + std::to_string(cell));
  }
  const std::string path = tempPath(name);
  EXPECT_TRUE(ckpt.saveTo(path).isOk());
  return path;
}

TEST(SnapshotMergeTest, UnionsDisjointShardsByteStably) {
  const auto p0 = writeShardSnapshot("merge_s0.bin", 9, 8, {0, 2, 4, 6});
  const auto p1 = writeShardSnapshot("merge_s1.bin", 9, 8, {1, 3, 5, 7});
  const auto merged = oisa::experiments::mergeSnapshots({p0, p1});
  ASSERT_TRUE(merged.isOk()) << merged.status().toString();
  EXPECT_EQ(merged.value().completedCells(), 8u);
  for (std::uint64_t cell = 0; cell < 8; ++cell) {
    ASSERT_NE(merged.value().payload(cell), nullptr) << cell;
    EXPECT_EQ(*merged.value().payload(cell), "cell" + std::to_string(cell));
  }
  // The fixed path order makes the merged file byte-stable: two
  // supervision runs write identical base snapshots.
  const std::string outA = tempPath("merge_outA.bin");
  const std::string outB = tempPath("merge_outB.bin");
  ASSERT_TRUE(merged.value().saveTo(outA).isOk());
  const auto again = oisa::experiments::mergeSnapshots({p0, p1});
  ASSERT_TRUE(again.isOk());
  ASSERT_TRUE(again.value().saveTo(outB).isOk());
  EXPECT_EQ(readFileBytes(outA), readFileBytes(outB));
  for (const auto& p : {p0, p1, outA, outB}) std::remove(p.c_str());
}

TEST(SnapshotMergeTest, MissingFilesAreSkippedNotFatal) {
  const auto p0 = writeShardSnapshot("merge_only.bin", 9, 8, {0, 2});
  const auto merged = oisa::experiments::mergeSnapshots(
      {tempPath("merge_gone.bin"), p0});
  ASSERT_TRUE(merged.isOk()) << merged.status().toString();
  EXPECT_EQ(merged.value().completedCells(), 2u);
  std::remove(p0.c_str());
}

TEST(SnapshotMergeTest, ForeignSnapshotsAreCorruption) {
  const auto p0 = writeShardSnapshot("merge_fp0.bin", 9, 8, {0});
  const auto p1 = writeShardSnapshot("merge_fp1.bin", 10, 8, {1});
  const auto badFp = oisa::experiments::mergeSnapshots({p0, p1});
  ASSERT_FALSE(badFp.isOk());
  EXPECT_EQ(badFp.status().code(), StatusCode::Corruption);

  const auto p2 = writeShardSnapshot("merge_shape.bin", 9, 16, {1});
  const auto badShape = oisa::experiments::mergeSnapshots({p0, p2});
  ASSERT_FALSE(badShape.isOk());
  EXPECT_EQ(badShape.status().code(), StatusCode::Corruption);
  for (const auto& p : {p0, p1, p2}) std::remove(p.c_str());
}

TEST(SnapshotMergeTest, NothingLoadableIsIoError) {
  const auto merged = oisa::experiments::mergeSnapshots(
      {tempPath("merge_no1.bin"), tempPath("merge_no2.bin")});
  ASSERT_FALSE(merged.isOk());
  EXPECT_EQ(merged.status().code(), StatusCode::IoError);
  // An empty path list merges to an empty snapshot (nothing to lose).
  const auto empty = oisa::experiments::mergeSnapshots({});
  ASSERT_TRUE(empty.isOk());
  EXPECT_EQ(empty.value().completedCells(), 0u);
}

// --- campaign adapter --------------------------------------------------

TEST(CampaignCheckpointTest, ResumeAdoptsOnlyMatchingCampaigns) {
  const std::string path = tempPath("campaign.bin");
  CheckpointOptions options;
  options.path = path;
  options.everyCells = 1;
  {
    CampaignCheckpoint campaign(options, /*fingerprint=*/42, /*cellCount=*/3);
    campaign.commit(0, "payload0");
    campaign.commit(2, "payload2");
    ASSERT_TRUE(campaign.finish().isOk());
  }
  // Same fingerprint + shape: adopted.
  CheckpointOptions resume = options;
  resume.resume = true;
  {
    CampaignCheckpoint campaign(resume, 42, 3);
    EXPECT_EQ(campaign.resumedCells(), 2u);
    ASSERT_TRUE(campaign.tryLoad(0).has_value());
    EXPECT_EQ(*campaign.tryLoad(0), "payload0");
    EXPECT_FALSE(campaign.tryLoad(1).has_value());
    EXPECT_EQ(*campaign.tryLoad(2), "payload2");
  }
  // Different fingerprint: ignored (recompute everything).
  {
    CampaignCheckpoint campaign(resume, 43, 3);
    EXPECT_EQ(campaign.resumedCells(), 0u);
  }
  // Different grid shape: ignored.
  {
    CampaignCheckpoint campaign(resume, 42, 4);
    EXPECT_EQ(campaign.resumedCells(), 0u);
  }
  // Without --resume an existing snapshot is not adopted.
  {
    CampaignCheckpoint campaign(options, 42, 3);
    EXPECT_EQ(campaign.resumedCells(), 0u);
  }
  // Missing file with --resume: silent fresh start (crash-restart loops
  // can always pass --resume).
  std::remove(path.c_str());
  {
    CampaignCheckpoint campaign(resume, 42, 3);
    EXPECT_EQ(campaign.resumedCells(), 0u);
  }
}

TEST(CampaignCheckpointTest, DisabledCheckpointIsANoOp) {
  CampaignCheckpoint campaign(CheckpointOptions{}, 1, 8);
  EXPECT_FALSE(campaign.enabled());
  EXPECT_FALSE(campaign.tryLoad(0).has_value());
  campaign.commit(0, "ignored");
  EXPECT_TRUE(campaign.finish().isOk());
}

// --- interrupted-campaign equivalence ---------------------------------

std::vector<oisa::circuits::SynthesizedDesign> smallDesigns() {
  const auto lib = oisa::timing::CellLibrary::generic65();
  std::vector<oisa::circuits::SynthesizedDesign> designs;
  designs.push_back(oisa::circuits::synthesize(
      oisa::core::makeIsa(8, 0, 0, 4), lib, oisa::circuits::SynthesisOptions{}));
  return designs;
}

oisa::experiments::RunOptions fastRun() {
  oisa::experiments::RunOptions options;
  options.cycles = 200;
  options.threads = 2;
  return options;
}

void expectRowsIdentical(
    const std::vector<oisa::experiments::CombinationRow>& a,
    const std::vector<oisa::experiments::CombinationRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].design, b[i].design);
    // Exact ==: resumed rows must be byte-identical, not merely close.
    EXPECT_EQ(a[i].cprPercent, b[i].cprPercent);
    EXPECT_EQ(a[i].periodNs, b[i].periodNs);
    EXPECT_EQ(a[i].rmsRelStruct, b[i].rmsRelStruct);
    EXPECT_EQ(a[i].rmsRelTiming, b[i].rmsRelTiming);
    EXPECT_EQ(a[i].rmsRelJoint, b[i].rmsRelJoint);
    EXPECT_EQ(a[i].meanAbsJointArith, b[i].meanAbsJointArith);
    EXPECT_EQ(a[i].structErrorRate, b[i].structErrorRate);
    EXPECT_EQ(a[i].timingErrorRate, b[i].timingErrorRate);
    EXPECT_EQ(a[i].cycles, b[i].cycles);
  }
}

TEST(ResumeEquivalenceTest, InterruptedCampaignResumesByteIdentical) {
  const auto designs = smallDesigns();
  const std::vector<double> cprs = {5.0, 10.0, 15.0};
  const std::string path = tempPath("resume_equiv.bin");
  std::remove(path.c_str());

  // Reference: uninterrupted run, no checkpointing involved.
  const auto reference =
      oisa::experiments::runErrorCombination(designs, cprs, fastRun());

  // Interrupted run: the first computed cell survives (checkpoint every
  // cell), then every later cell dies — the in-process stand-in for a
  // SIGKILL mid-campaign. finish() persists partial results on the
  // error path.
  auto interrupted = fastRun();
  interrupted.threads = 1;  // deterministic which-cell-fails mapping
  interrupted.checkpoint.path = path;
  interrupted.checkpoint.everyCells = 1;
  {
    ScopedFaultPlan plan("grid.cell:2+");
    EXPECT_THROW(
        (void)oisa::experiments::runErrorCombination(designs, cprs,
                                                     interrupted),
        oisa::experiments::GridError);
  }
  {
    const auto snapshot = GridCheckpoint::loadFrom(path);
    ASSERT_TRUE(snapshot.isOk()) << snapshot.status().toString();
    EXPECT_EQ(snapshot.value().completedCells(), 1u);
  }

  // Resume: recomputes only the missing cells; the full grid must be
  // byte-identical to the uninterrupted reference (threads may differ).
  auto resumed = fastRun();
  resumed.checkpoint.path = path;
  resumed.checkpoint.resume = true;
  const auto rows =
      oisa::experiments::runErrorCombination(designs, cprs, resumed);
  expectRowsIdentical(rows, reference);
  std::remove(path.c_str());
}

TEST(ResumeEquivalenceTest, ResumeFromCompleteRecomputesNothing) {
  const auto designs = smallDesigns();
  const std::vector<double> cprs = {5.0, 10.0};
  const std::string path = tempPath("resume_complete.bin");
  std::remove(path.c_str());

  auto checkpointed = fastRun();
  checkpointed.checkpoint.path = path;
  const auto reference =
      oisa::experiments::runErrorCombination(designs, cprs, checkpointed);

  // grid.cell:* makes ANY recomputation fail, so success here proves
  // every cell was served from the snapshot.
  auto resumed = fastRun();
  resumed.checkpoint.path = path;
  resumed.checkpoint.resume = true;
  ScopedFaultPlan plan("grid.cell:*");
  const auto rows =
      oisa::experiments::runErrorCombination(designs, cprs, resumed);
  expectRowsIdentical(rows, reference);
  std::remove(path.c_str());
}

TEST(ResumeEquivalenceTest, CheckpointEveryCellMatchesSparseAutosave) {
  const auto designs = smallDesigns();
  const std::vector<double> cprs = {5.0, 10.0, 15.0};
  const std::string pathA = tempPath("every1.bin");
  const std::string pathB = tempPath("every8.bin");
  std::remove(pathA.c_str());
  std::remove(pathB.c_str());

  auto everyCell = fastRun();
  everyCell.checkpoint.path = pathA;
  everyCell.checkpoint.everyCells = 1;
  auto sparse = fastRun();
  sparse.checkpoint.path = pathB;
  sparse.checkpoint.everyCells = 8;
  const auto rowsA =
      oisa::experiments::runErrorCombination(designs, cprs, everyCell);
  const auto rowsB =
      oisa::experiments::runErrorCombination(designs, cprs, sparse);
  expectRowsIdentical(rowsA, rowsB);

  // Both snapshots hold the complete campaign after finish(), and the
  // files are bit-identical (ordered cell map, deterministic payloads).
  EXPECT_EQ(readFileBytes(pathA), readFileBytes(pathB));
  std::remove(pathA.c_str());
  std::remove(pathB.c_str());
}

}  // namespace
