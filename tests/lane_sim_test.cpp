// Differential tests of the 64-lane timed engine (LaneTimedSimulator) and
// the lane-parallel trace collector against their scalar references. The
// lane engine must match 64 independent scalar TimedSimulator runs
// bit-exactly — per-cycle sampled outputs, settle behavior, final net
// state — on random netlists, all twelve paper design points and the
// multiplier ISA; the lane TraceCollector must reproduce the sequential
// collector record for record at any lane count, including deep
// overclocks that need chunk warm-up cycles. Also covers the shared
// CompiledNetlist substrate and the bounded-event-budget guard against
// non-settling/cyclic netlists.
#include <gtest/gtest.h>

#include <array>
#include <random>
#include <stdexcept>

#include "circuits/isa_netlist.h"
#include "circuits/multiplier_netlist.h"
#include "circuits/synthesis.h"
#include "core/isa_config.h"
#include "core/isa_multiplier.h"
#include "experiments/trace_collector.h"
#include "experiments/workload.h"
#include "netlist/batch_evaluator.h"
#include "netlist/compiled_netlist.h"
#include "netlist/gate.h"
#include "timing/cell_library.h"
#include "timing/delay_annotation.h"
#include "timing/event_sim.h"
#include "timing/lane_sim.h"
#include "timing/sta.h"

#include "differential_harness.h"

namespace {

using oisa::circuits::SynthesizedDesign;
using oisa::netlist::CompiledNetlist;
using oisa::netlist::GateId;
using oisa::netlist::GateKind;
using oisa::netlist::Netlist;
using oisa::netlist::NetId;
using oisa::timing::CellLibrary;
using oisa::timing::DelayAnnotation;
using oisa::timing::LaneTimedSimulator;
using oisa::timing::TimedSimulator;
using oisa::timing::TimePs;

constexpr std::size_t kLanes = LaneTimedSimulator::kLanes;

using oisa::testing::randomNetlist;
using oisa::testing::unitLibrary;

/// Drives one LaneTimedSimulator and 64 scalar TimedSimulators (sharing
/// the lane engine's compile) through `cycles` clocked cycles of random
/// stimulus and asserts exact per-lane agreement: every sampled output
/// every cycle, the final settle, and every net word.
void expectLaneMatchesScalars(const Netlist& nl, const DelayAnnotation& delays,
                              TimePs periodPs, int cycles,
                              std::uint64_t stimulusSeed) {
  const auto compiled = CompiledNetlist::compile(nl);
  LaneTimedSimulator lane(compiled, delays);
  std::vector<TimedSimulator> scalars;
  scalars.reserve(kLanes);
  for (std::size_t L = 0; L < kLanes; ++L) {
    scalars.emplace_back(compiled, delays);
  }

  std::mt19937_64 rng(stimulusSeed);
  const std::size_t inputs = nl.primaryInputs().size();
  const std::size_t outputs = nl.primaryOutputs().size();
  std::vector<std::uint64_t> inWords(inputs);
  std::vector<std::uint8_t> scalarIn(inputs);
  std::vector<std::uint64_t> laneOut;
  std::vector<std::uint8_t> scalarOut;

  const auto applyAll = [&] {
    for (auto& w : inWords) w = rng();
    lane.applyInputs(inWords);
    for (std::size_t L = 0; L < kLanes; ++L) {
      for (std::size_t i = 0; i < inputs; ++i) {
        scalarIn[i] = static_cast<std::uint8_t>((inWords[i] >> L) & 1u);
      }
      scalars[L].applyInputs(scalarIn);
    }
  };

  // Settled reset vector, then overclocked cycles.
  applyAll();
  (void)lane.settlePs();
  for (auto& s : scalars) (void)s.settlePs();

  for (int t = 0; t < cycles; ++t) {
    applyAll();
    lane.advancePs(periodPs);
    lane.sampleOutputsInto(laneOut);
    for (std::size_t L = 0; L < kLanes; ++L) {
      scalars[L].advancePs(periodPs);
      scalars[L].sampleOutputsInto(scalarOut);
      for (std::size_t o = 0; o < outputs; ++o) {
        ASSERT_EQ((laneOut[o] >> L) & 1u,
                  static_cast<std::uint64_t>(scalarOut[o]))
            << "cycle " << t << " lane " << L << " output " << o;
      }
    }
  }

  // Full settle must agree lane for lane too (quiescent state check).
  (void)lane.settlePs();
  for (std::size_t L = 0; L < kLanes; ++L) {
    (void)scalars[L].settlePs();
    for (std::uint32_t n = 0; n < nl.netCount(); ++n) {
      ASSERT_EQ((lane.netWord(NetId{n}) >> L) & 1u,
                static_cast<std::uint64_t>(scalars[L].netValue(NetId{n})))
          << "net " << n << " lane " << L;
    }
  }
}

TEST(LaneSimulatorTest, ExactAgreementOnRandomNetlists) {
  OISA_TRACE_SEED(404);
  std::mt19937_64 rng(404);
  for (int trial = 0; trial < 6; ++trial) {
    const Netlist nl = randomNetlist(rng, 12, 80);
    DelayAnnotation delays(nl, CellLibrary::generic65());
    // Off-grid double delays exercise the shared floor quantization.
    delays.applyVariation(rng, 0.35);
    const double critical = criticalDelayNs(nl, delays);
    // Savage overclock to comfortable slack.
    for (const double frac : {0.3, 0.7, 1.5}) {
      const TimePs period = std::max<TimePs>(
          1, oisa::timing::quantizeSpanPs(critical * frac));
      expectLaneMatchesScalars(nl, delays, period, 30,
                               5000 + static_cast<std::uint64_t>(trial));
    }
  }
}

TEST(LaneSimulatorTest, ExactAgreementOnAllPaperDesigns) {
  oisa::circuits::SynthesisOptions options;
  options.relaxSlack = true;  // exercise relaxation-mutated delays
  const auto designs = oisa::circuits::synthesizePaperDesigns(
      CellLibrary::generic65(), options);
  ASSERT_EQ(designs.size(), 12u);
  for (const double cpr : {5.0, 15.0}) {
    const TimePs period =
        oisa::timing::quantizeSpanPs(0.3 * (1.0 - cpr / 100.0));
    for (const auto& design : designs) {
      SCOPED_TRACE(design.config.name() + " @ " + std::to_string(cpr));
      expectLaneMatchesScalars(design.netlist, design.delays, period, 15, 7);
    }
  }
}

TEST(LaneSimulatorTest, ExactAgreementOnMultiplierIsa) {
  // The multiplier ISA datapath: 8x8 array multiplier whose row adders are
  // 16-bit speculative ISAs — a different port convention and much deeper
  // logic than the adder designs.
  const auto cfg = oisa::core::MultiplierConfig::make(8, 8, 2, 1, 4);
  const Netlist nl = oisa::circuits::buildMultiplierNetlist(cfg);
  const DelayAnnotation delays(nl, CellLibrary::generic65());
  const double critical = criticalDelayNs(nl, delays);
  for (const double frac : {0.5, 0.85}) {
    const TimePs period =
        std::max<TimePs>(1, oisa::timing::quantizeSpanPs(critical * frac));
    expectLaneMatchesScalars(nl, delays, period, 20, 11);
  }
}

TEST(LaneSimulatorTest, ResetReplaysIdentically) {
  const auto cfg = oisa::core::makeIsa(8, 2, 1, 4);
  const Netlist nl = oisa::circuits::buildIsaNetlist(cfg);
  const DelayAnnotation delays(nl, CellLibrary::generic65());
  LaneTimedSimulator sim(nl, delays);
  const std::size_t inputs = nl.primaryInputs().size();

  auto runOnce = [&] {
    std::vector<std::uint64_t> trace;
    std::vector<std::uint64_t> in(inputs);
    std::vector<std::uint64_t> out;
    std::mt19937_64 rng(99);
    for (int t = 0; t < 25; ++t) {
      for (auto& w : in) w = rng();
      sim.applyInputs(in);
      sim.advancePs(240);
      sim.sampleOutputsInto(out);
      trace.insert(trace.end(), out.begin(), out.end());
    }
    return trace;
  };
  const auto first = runOnce();
  sim.reset();
  EXPECT_EQ(sim.nowPs(), 0);
  EXPECT_EQ(sim.eventsProcessed(), 0u);
  EXPECT_EQ(sim.laneTransitionsCommitted(), 0u);
  EXPECT_EQ(runOnce(), first);
}

// ---------------------------------------------------------------------------
// Lane trace collector vs the sequential reference.
// ---------------------------------------------------------------------------

void expectTracesEqual(const oisa::predict::Trace& lane,
                       const oisa::predict::Trace& scalar) {
  ASSERT_EQ(lane.size(), scalar.size());
  for (std::size_t t = 0; t < lane.size(); ++t) {
    SCOPED_TRACE("record " + std::to_string(t));
    ASSERT_EQ(lane[t].a, scalar[t].a);
    ASSERT_EQ(lane[t].b, scalar[t].b);
    ASSERT_EQ(lane[t].carryIn, scalar[t].carryIn);
    ASSERT_EQ(lane[t].diamond, scalar[t].diamond);
    ASSERT_EQ(lane[t].diamondCout, scalar[t].diamondCout);
    ASSERT_EQ(lane[t].gold, scalar[t].gold);
    ASSERT_EQ(lane[t].goldCout, scalar[t].goldCout);
    ASSERT_EQ(lane[t].silver, scalar[t].silver);
    ASSERT_EQ(lane[t].silverCout, scalar[t].silverCout);
  }
}

SynthesizedDesign testDesign(int block, int spec, int corr, int red) {
  oisa::circuits::SynthesisOptions options;
  options.relaxSlack = true;
  return oisa::circuits::synthesize(
      oisa::core::makeIsa(block, spec, corr, red),
      CellLibrary::generic65(), options);
}

TEST(LaneTraceCollectorTest, MatchesScalarReferenceAcrossCprAndWorkloads) {
  const auto design = testDesign(8, 2, 1, 4);
  for (const double cpr : {5.0, 15.0}) {
    const double period = oisa::experiments::overclockedPeriodNs(0.3, cpr);
    for (const char* kind : {"uniform", "random-walk"}) {
      SCOPED_TRACE(std::string(kind) + " @ " + std::to_string(cpr));
      // Non-multiple-of-64 cycle count: uneven chunks + tail lanes.
      for (const std::uint64_t cycles : {std::uint64_t{391},
                                         std::uint64_t{64},
                                         std::uint64_t{5}}) {
        auto scalarWl = oisa::experiments::makeWorkload(kind, 32, 77);
        auto laneWl = oisa::experiments::makeWorkload(kind, 32, 77);
        const auto scalar = oisa::experiments::collectTraceScalar(
            design, period, *scalarWl, cycles);
        const auto lane =
            oisa::experiments::collectTrace(design, period, *laneWl, cycles);
        expectTracesEqual(lane, scalar);
      }
    }
  }
}

TEST(LaneTraceCollectorTest, MatchesScalarOnDeepOverclockWithWarmUp) {
  // Period far below half the critical path: chunk replay needs real
  // warm-up cycles for bit-exactness (warmUpCycles() >= 1).
  const auto design = testDesign(8, 0, 0, 4);
  const double period = design.criticalDelayNs * 0.35;
  oisa::experiments::TraceCollector collector(design, period);
  ASSERT_GE(collector.warmUpCycles(), 1);

  auto scalarWl = oisa::experiments::makeWorkload("uniform", 32, 13);
  auto laneWl = oisa::experiments::makeWorkload("uniform", 32, 13);
  const auto scalar = oisa::experiments::collectTraceScalar(
      design, period, *scalarWl, 500);
  const auto lane = collector.collect(*laneWl, 500);
  expectTracesEqual(lane, scalar);
}

TEST(LaneTraceCollectorTest, BitIdenticalAtAnyLaneCount) {
  const auto design = testDesign(16, 2, 0, 4);
  const double period = oisa::experiments::overclockedPeriodNs(0.3, 15.0);
  auto collectAt = [&](std::size_t lanes) {
    oisa::experiments::TraceCollector collector(design, period, lanes);
    auto wl = oisa::experiments::makeWorkload("uniform", 32, 5);
    return collector.collect(*wl, 300);
  };
  const auto one = collectAt(1);  // scalar path
  expectTracesEqual(collectAt(7), one);
  expectTracesEqual(collectAt(64), one);
}

TEST(LaneTraceCollectorTest, CollectorReuseIsDeterministic) {
  // One collector instance across repeated collects (the runner's usage):
  // reset() must restore pristine state.
  const auto design = testDesign(8, 2, 1, 4);
  oisa::experiments::TraceCollector collector(
      design, oisa::experiments::overclockedPeriodNs(0.3, 15.0));
  auto first = [&] {
    auto wl = oisa::experiments::makeWorkload("uniform", 32, 21);
    return collector.collect(*wl, 200);
  }();
  auto second = [&] {
    auto wl = oisa::experiments::makeWorkload("uniform", 32, 21);
    return collector.collect(*wl, 200);
  }();
  expectTracesEqual(second, first);
}

TEST(LaneTraceCollectorTest, PackedEmissionMatchesPackTrace) {
  const auto design = testDesign(8, 2, 1, 4);
  const double period = oisa::experiments::overclockedPeriodNs(0.3, 15.0);
  oisa::experiments::TraceCollector collector(design, period);
  const oisa::predict::FeatureExtractor extractor(32);
  auto wl = oisa::experiments::makeWorkload("uniform", 32, 3);
  const auto collected = collector.collectPacked(*wl, 130, extractor);
  const auto reference = extractor.packTrace(collected.trace);
  EXPECT_EQ(collected.packed.rowCount, reference.rowCount);
  EXPECT_EQ(collected.packed.shared, reference.shared);
  EXPECT_EQ(collected.packed.goldPrev, reference.goldPrev);
  EXPECT_EQ(collected.packed.goldCur, reference.goldCur);
  EXPECT_EQ(collected.packed.labels, reference.labels);
}

// ---------------------------------------------------------------------------
// Shared compiled substrate.
// ---------------------------------------------------------------------------

TEST(CompiledNetlistTest, OneCompileServesAllEngines) {
  const auto cfg = oisa::core::makeIsa(8, 2, 1, 4);
  const Netlist nl = oisa::circuits::buildIsaNetlist(cfg);
  const DelayAnnotation delays(nl, CellLibrary::generic65());
  const auto compiled = CompiledNetlist::compile(nl);
  ASSERT_TRUE(compiled->acyclic());

  // Functional engine from the shared compile == private compile.
  const oisa::netlist::BatchEvaluator shared(compiled);
  const oisa::netlist::BatchEvaluator privat(nl);
  std::mt19937_64 rng(8);
  std::vector<std::uint64_t> in(nl.primaryInputs().size());
  for (auto& w : in) w = rng();
  EXPECT_EQ(shared.evaluateOutputs(in), privat.evaluateOutputs(in));

  // Timed engines from the shared compile agree with Netlist-constructed
  // ones (spot check one overclocked cycle).
  TimedSimulator fromCompile(compiled, delays);
  TimedSimulator fromNetlist(nl, delays);
  std::vector<std::uint8_t> bits(nl.primaryInputs().size());
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng() & 1);
  fromCompile.applyInputs(bits);
  fromNetlist.applyInputs(bits);
  fromCompile.advancePs(255);
  fromNetlist.advancePs(255);
  EXPECT_EQ(fromCompile.sampleOutputs(), fromNetlist.sampleOutputs());
  EXPECT_EQ(fromCompile.eventsProcessed(), fromNetlist.eventsProcessed());
}

// ---------------------------------------------------------------------------
// Non-settling / cyclic netlist guard.
// ---------------------------------------------------------------------------

/// NAND-gated ring oscillator: en=0 holds the loop stable, en=1 makes it
/// oscillate forever. Built with the rewiring primitive (the builder API
/// alone cannot create cycles).
Netlist ringOscillator() {
  Netlist nl("osc");
  const NetId en = nl.input("en");
  const NetId n1 = nl.gate2(GateKind::Nand2, en, en);  // pin 1 rewired below
  const NetId n2 = nl.gate1(GateKind::Buf, n1);
  const NetId n3 = nl.gate1(GateKind::Buf, n2);
  nl.output("y", n3);
  nl.replaceGateInput(GateId{0}, 1, n3);  // close the loop
  return nl;
}

TEST(EventBudgetTest, CyclicNetlistIsDetectedNotLoopedOn) {
  const Netlist nl = ringOscillator();
  EXPECT_THROW(nl.validate(), std::runtime_error);
  const auto compiled = CompiledNetlist::compile(nl);
  EXPECT_FALSE(compiled->acyclic());
  // Functional evaluation requires an order and must refuse.
  EXPECT_THROW(oisa::netlist::BatchEvaluator{compiled}, std::runtime_error);

  const DelayAnnotation delays(nl, unitLibrary());
  TimedSimulator sim(compiled, delays);
  sim.setEventBudget(20000);
  // Stable configuration settles fine — the guard must not false-positive
  // — and converges to the *logic-consistent* quiescent state, not the
  // raw all-zero power-up values: with en=0, NAND(0, x) = 1 must
  // propagate around the loop to the output.
  sim.applyInputs(std::vector<std::uint8_t>{0});
  EXPECT_NO_THROW((void)sim.settlePs());
  EXPECT_EQ(sim.sampleOutputs(), std::vector<std::uint8_t>{1});
  // Enabled oscillator: settle must throw the diagnostic, not hang.
  sim.applyInputs(std::vector<std::uint8_t>{1});
  EXPECT_THROW((void)sim.settlePs(), std::runtime_error);
  // Bounded advance is guarded too, and reset() recovers the simulator.
  sim.reset();
  sim.applyInputs(std::vector<std::uint8_t>{1});
  EXPECT_THROW(sim.advancePs(TimePs{1} << 40), std::runtime_error);
  sim.reset();
  sim.applyInputs(std::vector<std::uint8_t>{0});
  EXPECT_NO_THROW((void)sim.settlePs());
}

TEST(EventBudgetTest, LaneEngineGuardsCyclicNetlistsToo) {
  const Netlist nl = ringOscillator();
  const DelayAnnotation delays(nl, unitLibrary());
  LaneTimedSimulator sim(nl, delays);
  sim.setEventBudget(20000);
  sim.applyInputs(std::vector<std::uint64_t>{0});
  EXPECT_NO_THROW((void)sim.settlePs());
  EXPECT_EQ(sim.sampleOutputs(), std::vector<std::uint64_t>{~std::uint64_t{0}});
  // Oscillate in a single lane: the shared-word engine must still detect.
  sim.applyInputs(std::vector<std::uint64_t>{std::uint64_t{1} << 17});
  EXPECT_THROW((void)sim.settlePs(), std::runtime_error);
  sim.reset();
  sim.applyInputs(std::vector<std::uint64_t>{0});
  EXPECT_NO_THROW((void)sim.settlePs());
}

TEST(EventBudgetTest, BudgetIsPerCallNotCumulative) {
  // A legitimate long run must never trip the guard: total committed
  // events exceed the per-call budget many times over, but each advance
  // stays far below it.
  const auto cfg = oisa::core::makeIsa(8, 2, 1, 4);
  const Netlist nl = oisa::circuits::buildIsaNetlist(cfg);
  const DelayAnnotation delays(nl, CellLibrary::generic65());
  TimedSimulator sim(nl, delays);
  sim.setEventBudget(5000);  // ~10 cycles' worth of events
  std::mt19937_64 rng(2);
  for (int t = 0; t < 200; ++t) {
    sim.applyInputs(oisa::circuits::packOperands(rng(), rng(), false, 32));
    EXPECT_NO_THROW(sim.advancePs(255));
  }
  EXPECT_GT(sim.eventsProcessed(), 5000u);
  // The natural "unlimited" spelling must not wrap the per-call cap into
  // an instant spurious throw (saturating arithmetic).
  sim.setEventBudget(~std::uint64_t{0});
  sim.applyInputs(oisa::circuits::packOperands(rng(), rng(), false, 32));
  EXPECT_NO_THROW((void)sim.settlePs());
}

}  // namespace
