// Behavioral ISA model tests: configuration validation, exact reference,
// the paper's compensation arithmetic (Fig. 2), and structural-error
// properties of the paper's design points.
#include <gtest/gtest.h>

#include <random>

#include "core/analysis.h"
#include "core/isa_adder.h"
#include "core/isa_config.h"

namespace {

using oisa::core::IsaAdder;
using oisa::core::IsaConfig;
using oisa::core::IsaSum;
using oisa::core::makeExact;
using oisa::core::makeIsa;
using oisa::core::PathTrace;

TEST(IsaConfigTest, NamesMatchPaperNotation) {
  EXPECT_EQ(makeIsa(8, 0, 0, 4).name(), "(8,0,0,4)");
  EXPECT_EQ(makeIsa(16, 7, 0, 8).name(), "(16,7,0,8)");
  EXPECT_EQ(makeExact().name(), "exact");
}

TEST(IsaConfigTest, ValidationRejectsBadShapes) {
  IsaConfig cfg;
  cfg.width = 32;
  cfg.block = 7;  // does not divide 32
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.block = 8;
  cfg.spec = 9;  // larger than block
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.spec = 0;
  cfg.correction = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.correction = 0;
  cfg.reduction = 9;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.reduction = 0;
  EXPECT_NO_THROW(cfg.validate());
  cfg.width = 65;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(IsaConfigTest, PaperDesignListHasTwelveEntries) {
  const auto& designs = oisa::core::paperDesigns();
  ASSERT_EQ(designs.size(), 12u);
  EXPECT_EQ(designs.front().name(), "(8,0,0,0)");
  EXPECT_EQ(designs.back().name(), "exact");
  for (const IsaConfig& cfg : designs) {
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_EQ(cfg.width, 32);
  }
}

TEST(IsaAdderTest, ExactAdderMatchesArithmetic) {
  const IsaAdder adder(makeExact(32));
  std::mt19937_64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng() & 0xffffffffull;
    const std::uint64_t b = rng() & 0xffffffffull;
    const bool cin = (rng() & 1u) != 0;
    const IsaSum r = adder.exactAdd(a, b, cin);
    const std::uint64_t full = a + b + (cin ? 1 : 0);
    EXPECT_EQ(r.sum, full & 0xffffffffull);
    EXPECT_EQ(r.carryOut, (full >> 32) != 0);
  }
}

TEST(IsaAdderTest, ExactAdderWidth64CarryOut) {
  const IsaAdder adder(makeExact(64));
  const std::uint64_t all = ~std::uint64_t{0};
  const IsaSum r = adder.exactAdd(all, 1, false);
  EXPECT_EQ(r.sum, 0u);
  EXPECT_TRUE(r.carryOut);
  const IsaSum r2 = adder.exactAdd(all, 0, true);
  EXPECT_EQ(r2.sum, 0u);
  EXPECT_TRUE(r2.carryOut);
  const IsaSum r3 = adder.exactAdd(all - 1, 1, false);
  EXPECT_EQ(r3.sum, all);
  EXPECT_FALSE(r3.carryOut);
}

TEST(IsaAdderTest, ComposedValueIncludesCarryOut) {
  const IsaAdder adder(makeExact(32));
  const IsaSum r = adder.exactAdd(0xffffffffull, 2, false);
  EXPECT_EQ(r.sum, 1u);
  EXPECT_TRUE(r.carryOut);
  EXPECT_EQ(r.value(32), 0x100000001ull);
  // Width 64: the carry-out cannot be composed and is dropped.
  const IsaAdder wide(makeExact(64));
  const IsaSum w = wide.exactAdd(~std::uint64_t{0}, 2, false);
  EXPECT_TRUE(w.carryOut);
  EXPECT_EQ(w.value(64), w.sum);
}

TEST(IsaAdderTest, SinglePathConfigIsExact) {
  // block == width means one path fed by the true carry-in: exact.
  const IsaAdder isa(makeIsa(32, 0, 0, 0, 32));
  std::mt19937_64 rng(11);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng() & 0xffffffffull;
    const std::uint64_t b = rng() & 0xffffffffull;
    EXPECT_EQ(isa.structuralError(a, b), 0);
  }
}

TEST(IsaAdderTest, TruncatedCarryDropsBlockCarry) {
  // (8,0,0,0) on 16 bits: carry from the low block is simply lost.
  const IsaAdder isa(makeIsa(8, 0, 0, 0, 16));
  const IsaSum gold = isa.add(0x00ff, 0x0001);
  EXPECT_EQ(gold.sum, 0x0000u);
  EXPECT_EQ(isa.structuralError(0x00ff, 0x0001), -0x100);
}

TEST(IsaAdderTest, OneBitCorrectionRepairsMissedCarry) {
  // Same stimulus with 1-bit correction: local LSB is 0, so +1 fits.
  const IsaAdder isa(makeIsa(8, 0, 1, 0, 16));
  const IsaSum gold = isa.add(0x00ff, 0x0001);
  EXPECT_EQ(gold.sum, 0x0100u);
  EXPECT_EQ(isa.structuralError(0x00ff, 0x0001), 0);
}

TEST(IsaAdderTest, BalancingKicksInWhenCorrectionImpossible) {
  // Missed carry with local LSB already 1: cannot increment 1-bit group;
  // the 4-bit reduction saturates the preceding sum's MSBs instead.
  const IsaAdder isa(makeIsa(8, 0, 1, 4, 16));
  // low block: 0xff + 0x01 -> sum 0x00, carry out 1 (missed).
  // high block: 0x00 + 0x01 -> local sum 0x01, LSB = 1 (uncorrectable).
  const IsaSum gold = isa.add(0x00ff, 0x0101);
  EXPECT_EQ(gold.sum, 0x01f0u);
  // Exact result is 0x0200: balancing leaves a small negative error.
  EXPECT_EQ(isa.structuralError(0x00ff, 0x0101), 0x1f0 - 0x200);
}

TEST(IsaAdderTest, NoCompensationKeepsRawError) {
  // Same stimulus without any compensation: the dropped block carry stays
  // dropped (gold = 0x0100 vs exact 0x0200).
  const IsaAdder isa(makeIsa(8, 0, 0, 0, 16));
  EXPECT_EQ(isa.structuralError(0x00ff, 0x0101), 0x100 - 0x200);
}

TEST(IsaAdderTest, SpeculationWindowCatchesGeneratedCarry) {
  // (8,2,0,0) on 16 bits: a generate in the top-2 window of the low block
  // is visible to the speculator, so no fault occurs.
  const IsaAdder isa(makeIsa(8, 2, 0, 0, 16));
  // a=0xc0, b=0x40: bits 6 of both set -> window generates; carry-out real.
  EXPECT_EQ(isa.structuralError(0x00c0, 0x0040), 0);
  // Propagate chain through the whole window with the generate below it:
  // window sees propagate only, speculates 0, real carry arrives: fault.
  // a=0x3f + b=0xc1 = 0x100: bits 6..7 are propagate (a=0,b=1 / a=0,b=1).
  EXPECT_EQ(isa.structuralError(0x003f, 0x00c1, false), -0x100);
}

TEST(IsaAdderTest, Figure2ScenarioCorrectionAndBalancing) {
  // The paper's Fig. 2 arithmetic on a (4,2,1,1) 12-bit instance:
  // path 0 is exact; path 1 has a correctable missed carry; path 2 has an
  // uncorrectable one, so path 1's MSB is forced to 1.
  const IsaAdder isa(makeIsa(4, 2, 1, 1, 12));
  const std::uint64_t a = 0b0001'1110'1111;
  const std::uint64_t b = 0b0000'0010'0001;
  std::vector<PathTrace> traces;
  const IsaSum gold = isa.addTraced(a, b, false, traces);

  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].faultDirection, 0);
  EXPECT_EQ(traces[1].faultDirection, +1);
  EXPECT_TRUE(traces[1].corrected);
  EXPECT_FALSE(traces[1].balanced);
  EXPECT_EQ(traces[2].faultDirection, +1);
  EXPECT_FALSE(traces[2].corrected);
  EXPECT_TRUE(traces[2].balanced);

  EXPECT_EQ(gold.sum, 0b0001'1001'0000u);
  const IsaSum exact = isa.exactAdd(a, b, false);
  EXPECT_EQ(exact.sum, 0x210u);
}

TEST(IsaAdderTest, SpuriousCarryNeverOccursWithGenerateSpeculation) {
  // The SPEC block speculates the window's generate signal with carry-in 0;
  // if the window generates, the real block carry-out is also 1, so the
  // "spurious carry" direction is structurally impossible (the COMP
  // hardware still implements it; see compensation tests for injection).
  std::mt19937_64 rng(23);
  for (const IsaConfig& cfg : oisa::core::paperDesigns()) {
    if (cfg.exact) continue;
    const IsaAdder isa(cfg);
    std::vector<PathTrace> traces;
    for (int i = 0; i < 3000; ++i) {
      (void)isa.addTraced(rng(), rng(), false, traces);
      for (const PathTrace& t : traces) {
        EXPECT_GE(t.faultDirection, 0) << cfg.name();
      }
    }
  }
}

TEST(IsaAdderTest, StructuralErrorOfBalancedTruncationIsBoundedNegative) {
  // (8,0,0,4) on 32 bits: every fault is a missed carry; balancing can only
  // shrink the deficit, never overshoot. Worst case is one full dropped
  // carry per boundary: -(2^24 + 2^16 + 2^8) > -2^25.
  const IsaAdder isa(makeIsa(8, 0, 0, 4, 32));
  std::mt19937_64 rng(31);
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t e = isa.structuralError(rng(), rng());
    EXPECT_LE(e, 0);
    EXPECT_GT(e, -(std::int64_t{1} << 25));
  }
}

TEST(IsaAdderTest, MoreCompensationNeverIncreasesRmsError) {
  // Sanity ordering on mean |error| across the (8,0,0,x) family: more
  // reduction bits give a strictly smaller mean absolute structural error.
  std::mt19937_64 rng(41);
  std::vector<std::uint64_t> as, bs;
  for (int i = 0; i < 20000; ++i) {
    as.push_back(rng());
    bs.push_back(rng());
  }
  auto meanAbs = [&](const IsaConfig& cfg) {
    const IsaAdder isa(cfg);
    double sum = 0.0;
    for (std::size_t i = 0; i < as.size(); ++i) {
      sum += static_cast<double>(std::abs(isa.structuralError(as[i], bs[i])));
    }
    return sum / static_cast<double>(as.size());
  };
  const double e0 = meanAbs(makeIsa(8, 0, 0, 0));
  const double e2 = meanAbs(makeIsa(8, 0, 0, 2));
  const double e4 = meanAbs(makeIsa(8, 0, 0, 4));
  EXPECT_GT(e0, e2);
  EXPECT_GT(e2, e4);
}

TEST(IsaAdderTest, WiderSpeculationWindowReducesErrorRate) {
  std::mt19937_64 rng(43);
  std::vector<std::uint64_t> as, bs;
  for (int i = 0; i < 20000; ++i) {
    as.push_back(rng());
    bs.push_back(rng());
  }
  auto errorRate = [&](const IsaConfig& cfg) {
    const IsaAdder isa(cfg);
    int errors = 0;
    for (std::size_t i = 0; i < as.size(); ++i) {
      errors += isa.structuralError(as[i], bs[i]) != 0 ? 1 : 0;
    }
    return static_cast<double>(errors) / static_cast<double>(as.size());
  };
  const double s0 = errorRate(makeIsa(16, 0, 0, 0));
  const double s2 = errorRate(makeIsa(16, 2, 0, 0));
  const double s7 = errorRate(makeIsa(16, 7, 0, 0));
  EXPECT_GT(s0, s2);
  EXPECT_GT(s2, s7);
}

TEST(IsaAdderTest, SpeculateHighNamesCarrySuffix) {
  IsaConfig cfg = makeIsa(8, 2, 1, 4);
  cfg.speculateHigh = true;
  EXPECT_EQ(cfg.name(), "(8,2,1,4)+");
}

TEST(IsaAdderTest, SpeculateHighProducesSpuriousCarries) {
  // The dual speculation polarity makes the spurious-carry direction
  // reachable: with constant-1 speculation, 0 + 0 has no real carries but
  // every path assumes one.
  IsaConfig cfg = makeIsa(8, 0, 0, 0, 32);
  cfg.speculateHigh = true;
  const IsaAdder isa(cfg);
  std::vector<PathTrace> traces;
  const IsaSum r = isa.addTraced(0, 0, false, traces);
  for (std::size_t i = 1; i < traces.size(); ++i) {
    EXPECT_EQ(traces[i].faultDirection, -1) << "path " << i;
  }
  // Each spurious +1 lands at the path base: error is positive.
  EXPECT_GT(r.sum, 0u);
  EXPECT_GT(isa.structuralError(0, 0), 0);
}

TEST(IsaAdderTest, SpeculateHighDecrementCorrectionRepairs) {
  // 1-bit correction: the spurious +1 is removed when the local LSB is 1.
  IsaConfig cfg = makeIsa(8, 0, 1, 0, 16);
  cfg.speculateHigh = true;
  const IsaAdder isa(cfg);
  // High block 0x01 + 0x00 + spurious 1 = 0x02, LSB 0 -> decrement not
  // possible within 1 bit; with local sum LSB 1 it is.
  std::vector<PathTrace> traces;
  (void)isa.addTraced(0x0000, 0x0100, false, traces);  // high sum = 1+1=2
  EXPECT_EQ(traces[1].faultDirection, -1);
  EXPECT_FALSE(traces[1].corrected);  // 2's LSB is 0: borrow would escape
  (void)isa.addTraced(0x0000, 0x0000, false, traces);  // high sum = 0+1=1
  EXPECT_EQ(traces[1].faultDirection, -1);
  EXPECT_TRUE(traces[1].corrected);
  EXPECT_EQ(isa.structuralError(0x0000, 0x0000), 0);
}

TEST(IsaAdderTest, SpeculateHighBalancingForcesDown) {
  // No correction, 4-bit reduction: a spurious carry forces the preceding
  // sum's top bits to 0, shrinking the positive error.
  IsaConfig cfg = makeIsa(8, 0, 0, 4, 16);
  cfg.speculateHigh = true;
  const IsaAdder isa(cfg);
  std::vector<PathTrace> traces;
  // a+b = 0x00f0: low block sum 0xf0, no real carry; spec assumes one.
  const IsaSum r = isa.addTraced(0x00f0, 0x0000, false, traces);
  EXPECT_EQ(traces[1].faultDirection, -1);
  EXPECT_TRUE(traces[1].balanced);
  // Low sum 0xf0 forced down to 0x00; high block keeps the spurious +1.
  EXPECT_EQ(r.sum, 0x0100u);
  EXPECT_EQ(isa.structuralError(0x00f0, 0x0000), 0x0100 - 0x00f0);
}

TEST(IsaAdderTest, SpeculateHighWindowCatchesRealCarry) {
  // When a real carry exists, speculate-high with a window is correct as
  // long as the window does not kill it.
  IsaConfig cfg = makeIsa(8, 2, 0, 0, 16);
  cfg.speculateHigh = true;
  const IsaAdder isa(cfg);
  EXPECT_EQ(isa.structuralError(0x00c0, 0x0040), 0);  // window generates
  EXPECT_EQ(isa.structuralError(0x003f, 0x00c1), 0);  // window propagates
  // Window kills (both top-2 bit pairs 0) while a real carry arrives:
  // impossible — a kill absorbs the carry. Spurious instead: kill + spec.
  EXPECT_EQ(isa.structuralError(0x0000, 0x0000), 0);  // kill, no carry: ok
}

TEST(IsaAdderTest, AnalysisRejectsSpeculateHigh) {
  IsaConfig cfg = makeIsa(8, 2, 0, 0);
  cfg.speculateHigh = true;
  EXPECT_THROW((void)oisa::core::faultProbability(cfg, 1),
               std::invalid_argument);
}

// Parameterized sweep: for every paper design, the traced and untraced
// entry points agree and carry-out matches the top path.
class PaperDesignTest : public ::testing::TestWithParam<IsaConfig> {};

TEST_P(PaperDesignTest, TracedAndPlainAdditionsAgree) {
  const IsaAdder isa(GetParam());
  std::mt19937_64 rng(59);
  std::vector<PathTrace> traces;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    const IsaSum plain = isa.add(a, b);
    const IsaSum traced = isa.addTraced(a, b, false, traces);
    EXPECT_EQ(plain.sum, traced.sum);
    EXPECT_EQ(plain.carryOut, traced.carryOut);
    EXPECT_EQ(traces.size(),
              static_cast<std::size_t>(GetParam().pathCount()));
  }
}

TEST_P(PaperDesignTest, CarryInPropagatesThroughFirstPath) {
  const IsaAdder isa(GetParam());
  // 0 + 0 + cin: only the first path sees the carry-in.
  const IsaSum withCin = isa.add(0, 0, true);
  EXPECT_EQ(withCin.sum, 1u);
  const IsaSum withoutCin = isa.add(0, 0, false);
  EXPECT_EQ(withoutCin.sum, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPaperDesigns, PaperDesignTest,
                         ::testing::ValuesIn(oisa::core::paperDesigns()),
                         [](const auto& info) {
                           std::string n = info.param.name();
                           std::string out;
                           for (char ch : n) {
                             if (std::isalnum(static_cast<unsigned char>(ch))) {
                               out += ch;
                             } else if (ch == ',') {
                               out += '_';
                             }
                           }
                           return out;
                         });

}  // namespace
