// ISA-based approximate multiplier tests: behavioral semantics, exactness
// with exact row adders, netlist/behavioral equivalence, and error scaling
// with the adder configuration.
#include <gtest/gtest.h>

#include <random>

#include "circuits/multiplier_netlist.h"
#include "core/isa_multiplier.h"
#include "netlist/evaluator.h"

namespace {

using oisa::circuits::buildMultiplierNetlist;
using oisa::circuits::packMultiplierOperands;
using oisa::circuits::unpackProduct;
using oisa::core::IsaMultiplier;
using oisa::core::MultiplierConfig;
using oisa::netlist::Evaluator;

TEST(MultiplierConfigTest, ValidatesAdderWidth) {
  MultiplierConfig bad;
  bad.width = 16;
  bad.adder = oisa::core::makeIsa(8, 0, 0, 4, 16);  // should be 32
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  EXPECT_NO_THROW(MultiplierConfig::make(16, 8, 0, 0, 4).validate());
  EXPECT_THROW(MultiplierConfig::make(40, 8, 0, 0, 4),
               std::invalid_argument);
}

TEST(MultiplierTest, ExactRowAddersGiveExactProducts) {
  const IsaMultiplier mul(MultiplierConfig::makeExact(16));
  std::mt19937_64 rng(3);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t a = rng() & 0xffffu;
    const std::uint64_t b = rng() & 0xffffu;
    EXPECT_EQ(mul.multiply(a, b), a * b);
    EXPECT_EQ(mul.structuralError(a, b), 0);
  }
}

TEST(MultiplierTest, SmallWidthExhaustiveWithExactAdder) {
  const IsaMultiplier mul(MultiplierConfig::makeExact(4));
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      EXPECT_EQ(mul.multiply(a, b), a * b);
    }
  }
}

TEST(MultiplierTest, ApproximateAdderKeepsSmallRelativeError) {
  // A high-accuracy row adder: products stay close to exact.
  const IsaMultiplier mul(MultiplierConfig::make(16, 16, 7, 0, 8));
  std::mt19937_64 rng(7);
  double worstRel = 0.0;
  int nonzeroErrors = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t a = rng() & 0xffffu;
    const std::uint64_t b = rng() & 0xffffu;
    const std::int64_t e = mul.structuralError(a, b);
    if (e != 0) ++nonzeroErrors;
    const std::uint64_t exact = mul.exactMultiply(a, b);
    if (exact != 0) {
      worstRel = std::max(
          worstRel, std::abs(static_cast<double>(e)) /
                        static_cast<double>(exact));
    }
  }
  EXPECT_LT(worstRel, 0.05);
  // Errors exist (it is approximate) but are not the common case.
  EXPECT_LT(nonzeroErrors, 5000 / 2);
}

TEST(MultiplierTest, CoarserAdderGivesLargerErrors) {
  const IsaMultiplier coarse(MultiplierConfig::make(16, 8, 0, 0, 0));
  const IsaMultiplier balanced(MultiplierConfig::make(16, 8, 0, 0, 4));
  const IsaMultiplier fine(MultiplierConfig::make(16, 16, 7, 0, 8));
  std::mt19937_64 rng(11);
  double meanCoarse = 0.0, meanBalanced = 0.0, meanFine = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t a = rng() & 0xffffu;
    const std::uint64_t b = rng() & 0xffffu;
    meanCoarse += std::abs(static_cast<double>(coarse.structuralError(a, b)));
    meanBalanced +=
        std::abs(static_cast<double>(balanced.structuralError(a, b)));
    meanFine += std::abs(static_cast<double>(fine.structuralError(a, b)));
  }
  EXPECT_GT(meanCoarse, meanBalanced);
  EXPECT_GT(meanBalanced, meanFine);
}

class MultiplierEquivalenceTest
    : public ::testing::TestWithParam<oisa::core::IsaConfig> {};

TEST_P(MultiplierEquivalenceTest, NetlistMatchesBehavioralModel) {
  const oisa::core::IsaConfig rowCfg = GetParam();
  MultiplierConfig cfg;
  cfg.width = 8;
  cfg.adder = rowCfg;
  cfg.adder.width = 16;
  if (!cfg.adder.exact && 16 % cfg.adder.block != 0) {
    GTEST_SKIP() << "block does not divide 2W";
  }
  cfg.validate();

  const IsaMultiplier behavioral(cfg);
  const auto nl = buildMultiplierNetlist(cfg);
  const Evaluator eval(nl);

  std::mt19937_64 rng(13);
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t a = rng() & 0xffu;
    const std::uint64_t b = rng() & 0xffu;
    const auto out =
        eval.evaluateOutputs(packMultiplierOperands(a, b, 8));
    EXPECT_EQ(unpackProduct(out, 8), behavioral.multiply(a, b))
        << rowCfg.name() << " a=" << a << " b=" << b;
  }
  // Corner vectors.
  for (const std::uint64_t a : {0ull, 1ull, 0xffull, 0xaaull, 0x55ull}) {
    for (const std::uint64_t b : {0ull, 1ull, 0xffull, 0x80ull}) {
      const auto out =
          eval.evaluateOutputs(packMultiplierOperands(a, b, 8));
      EXPECT_EQ(unpackProduct(out, 8), behavioral.multiply(a, b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RowAdders, MultiplierEquivalenceTest,
    ::testing::Values(oisa::core::makeExact(16),
                      oisa::core::makeIsa(8, 0, 0, 0, 16),
                      oisa::core::makeIsa(8, 0, 0, 4, 16),
                      oisa::core::makeIsa(8, 2, 1, 4, 16),
                      oisa::core::makeIsa(4, 2, 1, 2, 16)),
    [](const auto& info) {
      std::string name;
      for (char ch : info.param.name()) {
        if (std::isalnum(static_cast<unsigned char>(ch))) name += ch;
        if (ch == ',') name += '_';
      }
      return name;
    });

TEST(MultiplierNetlistTest, ProductPortConvention) {
  const auto cfg = MultiplierConfig::make(8, 8, 0, 0, 4);
  const auto nl = buildMultiplierNetlist(cfg);
  EXPECT_EQ(nl.primaryInputs().size(), 16u);
  EXPECT_EQ(nl.primaryOutputs().size(), 16u);
  EXPECT_EQ(nl.outputName(0), "p0");
  EXPECT_EQ(nl.outputName(15), "p15");
}

TEST(MultiplierNetlistTest, UnpackRejectsShortVector) {
  const std::vector<std::uint8_t> tooShort(3, 0);
  EXPECT_THROW((void)unpackProduct(tooShort, 8), std::invalid_argument);
}

}  // namespace
