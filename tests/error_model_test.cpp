// Error-model tests: the paper's signed decomposition (Figs. 4-5), the
// streaming statistics, and the bit-level-equivalent distribution.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "core/bit_distribution.h"
#include "core/error_model.h"
#include "core/error_stats.h"

namespace {

using oisa::core::BitErrorDistribution;
using oisa::core::decomposeErrors;
using oisa::core::ErrorCombination;
using oisa::core::ErrorSample;
using oisa::core::ErrorStats;
using oisa::core::OutputTriple;

TEST(ErrorModelTest, AdditiveErrorsMatchFigure4) {
  // y_diamond=8, y_gold=6, y_silver=4: both contributions are -2/8 and add.
  const ErrorSample s = decomposeErrors(OutputTriple{8, 6, 4});
  EXPECT_EQ(s.eStruct, -2);
  EXPECT_EQ(s.eTiming, -2);
  EXPECT_EQ(s.eJoint, -4);
  ASSERT_TRUE(s.reStruct.has_value());
  EXPECT_DOUBLE_EQ(*s.reStruct, -0.25);
  EXPECT_DOUBLE_EQ(*s.reTiming, -0.25);
  EXPECT_DOUBLE_EQ(*s.reJoint, -0.5);
}

TEST(ErrorModelTest, CompensatingErrorsMatchFigure5) {
  // y_diamond=8, y_gold=6, y_silver=7: timing error +1/8 cancels part of
  // the structural -2/8.
  const ErrorSample s = decomposeErrors(OutputTriple{8, 6, 7});
  EXPECT_EQ(s.eStruct, -2);
  EXPECT_EQ(s.eTiming, +1);
  EXPECT_EQ(s.eJoint, -1);
  EXPECT_DOUBLE_EQ(*s.reStruct, -0.25);
  EXPECT_DOUBLE_EQ(*s.reTiming, 0.125);
  EXPECT_DOUBLE_EQ(*s.reJoint, -0.125);
}

TEST(ErrorModelTest, JointIsAlwaysSumOfContributions) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 5000; ++i) {
    const OutputTriple t{rng() & 0xffffffffull, rng() & 0xffffffffull,
                         rng() & 0xffffffffull};
    const ErrorSample s = decomposeErrors(t);
    EXPECT_EQ(s.eJoint, s.eStruct + s.eTiming);
    if (t.diamond != 0) {
      EXPECT_NEAR(*s.reJoint, *s.reStruct + *s.reTiming, 1e-12);
    } else {
      EXPECT_FALSE(s.reJoint.has_value());
    }
  }
}

TEST(ErrorModelTest, ZeroDiamondSkipsRelativeErrors) {
  ErrorCombination combo;
  combo.add(OutputTriple{0, 5, 5});
  combo.add(OutputTriple{10, 10, 10});
  EXPECT_EQ(combo.cycles(), 2u);
  EXPECT_EQ(combo.skippedRelative(), 1u);
  EXPECT_EQ(combo.relStruct().count(), 1u);
  EXPECT_EQ(combo.arithStruct().count(), 2u);
}

TEST(ErrorStatsTest, MomentsMatchClosedForm) {
  ErrorStats stats;
  stats.add(1.0);
  stats.add(-3.0);
  stats.add(0.0);
  stats.add(2.0);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.meanAbs(), 1.5);
  EXPECT_DOUBLE_EQ(stats.rms(), std::sqrt((1.0 + 9.0 + 0.0 + 4.0) / 4.0));
  EXPECT_DOUBLE_EQ(stats.errorRate(), 0.75);
  EXPECT_DOUBLE_EQ(stats.minValue(), -3.0);
  EXPECT_DOUBLE_EQ(stats.maxValue(), 2.0);
  EXPECT_DOUBLE_EQ(stats.maxAbs(), 3.0);
}

TEST(ErrorStatsTest, EmptyAccumulatorIsAllZero) {
  const ErrorStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.rms(), 0.0);
  EXPECT_EQ(stats.errorRate(), 0.0);
  EXPECT_EQ(stats.maxAbs(), 0.0);
}

TEST(ErrorStatsTest, MergeEqualsSequentialFeed) {
  std::mt19937_64 rng(5);
  ErrorStats whole, partA, partB;
  for (int i = 0; i < 1000; ++i) {
    const double v = static_cast<double>(static_cast<std::int64_t>(rng())) /
                     1e12;
    whole.add(v);
    (i % 2 ? partA : partB).add(v);
  }
  partA.merge(partB);
  EXPECT_EQ(partA.count(), whole.count());
  // Summation order differs between the merged and sequential paths, so
  // compare with a relative floating-point tolerance.
  EXPECT_NEAR(partA.mean(), whole.mean(), std::abs(whole.mean()) * 1e-9);
  EXPECT_NEAR(partA.rms(), whole.rms(), whole.rms() * 1e-9);
  EXPECT_DOUBLE_EQ(partA.maxAbs(), whole.maxAbs());
}

// Shard-merge properties: the supervisor folds per-shard accumulators
// back together, so merge must behave like a (floating-point) monoid —
// empty is the identity, grouping doesn't matter beyond rounding, and a
// fixed merge order reproduces bit-identical moments across runs.

std::vector<ErrorStats> shardStats(unsigned shards, int samples) {
  std::mt19937_64 rng(11);
  std::vector<ErrorStats> stats(shards);
  for (int i = 0; i < samples; ++i) {
    const double v =
        static_cast<double>(static_cast<std::int64_t>(rng())) / 1e12;
    stats[static_cast<unsigned>(i) % shards].add(v);
  }
  return stats;
}

TEST(ErrorStatsTest, MergingEmptyIsTheExactIdentity) {
  auto stats = shardStats(1, 500);
  ErrorStats merged = stats[0];
  merged.merge(ErrorStats{});  // right identity
  EXPECT_EQ(merged.count(), stats[0].count());
  EXPECT_EQ(merged.mean(), stats[0].mean());  // bitwise, not approximate
  EXPECT_EQ(merged.rms(), stats[0].rms());
  EXPECT_EQ(merged.maxAbs(), stats[0].maxAbs());
  ErrorStats fromEmpty;  // left identity
  fromEmpty.merge(stats[0]);
  EXPECT_EQ(fromEmpty.mean(), stats[0].mean());
  EXPECT_EQ(fromEmpty.minValue(), stats[0].minValue());
  EXPECT_EQ(fromEmpty.errorRate(), stats[0].errorRate());
}

TEST(ErrorStatsTest, MergePermutationsAgreeWithinRounding) {
  const auto stats = shardStats(4, 4000);
  std::vector<unsigned> order{0, 1, 2, 3};
  ErrorStats reference;
  for (const unsigned i : order) reference.merge(stats[i]);
  do {
    ErrorStats merged;
    for (const unsigned i : order) merged.merge(stats[i]);
    EXPECT_EQ(merged.count(), reference.count());
    EXPECT_EQ(merged.errorRate(), reference.errorRate());
    // Extremes are order-independent exactly; sums only to rounding.
    EXPECT_EQ(merged.minValue(), reference.minValue());
    EXPECT_EQ(merged.maxValue(), reference.maxValue());
    EXPECT_NEAR(merged.mean(), reference.mean(),
                std::abs(reference.mean()) * 1e-12);
    EXPECT_NEAR(merged.rms(), reference.rms(), reference.rms() * 1e-12);
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(ErrorStatsTest, MergeIsAssociativeWithinRounding) {
  const auto stats = shardStats(3, 3000);
  ErrorStats leftFold = stats[0];   // (a ⊕ b) ⊕ c
  leftFold.merge(stats[1]);
  leftFold.merge(stats[2]);
  ErrorStats bc = stats[1];         // a ⊕ (b ⊕ c)
  bc.merge(stats[2]);
  ErrorStats rightFold = stats[0];
  rightFold.merge(bc);
  EXPECT_EQ(leftFold.count(), rightFold.count());
  EXPECT_NEAR(leftFold.mean(), rightFold.mean(),
              std::abs(rightFold.mean()) * 1e-12);
  EXPECT_NEAR(leftFold.rms(), rightFold.rms(), rightFold.rms() * 1e-12);
  EXPECT_EQ(leftFold.maxAbs(), rightFold.maxAbs());
}

TEST(ErrorStatsTest, FixedMergeOrderIsBitwiseReproducible) {
  // This is the property the sharded supervisor's byte-identical CSV
  // rests on: same shard partials, same (shard 0..N-1) order => the
  // same doubles to the last bit, run after run.
  const auto stats = shardStats(4, 4000);
  ErrorStats runA, runB;
  for (const auto& s : stats) runA.merge(s);
  for (const auto& s : stats) runB.merge(s);
  EXPECT_EQ(runA.mean(), runB.mean());
  EXPECT_EQ(runA.meanAbs(), runB.meanAbs());
  EXPECT_EQ(runA.rms(), runB.rms());
  EXPECT_EQ(runA.errorRate(), runB.errorRate());
  EXPECT_EQ(runA.minValue(), runB.minValue());
  EXPECT_EQ(runA.maxValue(), runB.maxValue());
}

TEST(ErrorCombinationTest, MergeMatchesSingleStream) {
  std::mt19937_64 rng(9);
  ErrorCombination whole, a, b;
  for (int i = 0; i < 2000; ++i) {
    const OutputTriple t{rng() & 0xffffull, rng() & 0xffffull,
                         rng() & 0xffffull};
    whole.add(t);
    (i % 3 == 0 ? a : b).add(t);
  }
  a.merge(b);
  EXPECT_EQ(a.cycles(), whole.cycles());
  EXPECT_DOUBLE_EQ(a.relJoint().rms(), whole.relJoint().rms());
  EXPECT_DOUBLE_EQ(a.arithTiming().meanAbs(), whole.arithTiming().meanAbs());
}

TEST(BitDistributionTest, CountsFlippedPositions) {
  BitErrorDistribution dist(8);
  dist.add(0b10000001, 0b00000001);  // bit 7 flipped
  dist.add(0b00000000, 0b00000001);  // bit 0 flipped
  dist.add(0b00000001, 0b00000001);  // identical
  EXPECT_EQ(dist.cycles(), 3u);
  EXPECT_EQ(dist.flips(7), 1u);
  EXPECT_EQ(dist.flips(0), 1u);
  EXPECT_EQ(dist.flips(3), 0u);
  EXPECT_DOUBLE_EQ(dist.rate(7), 1.0 / 3.0);
  EXPECT_EQ(dist.totalFlips(), 2u);
}

TEST(BitDistributionTest, MasksBitsBeyondWidth) {
  BitErrorDistribution dist(4);
  dist.add(0xf0, 0x00);  // all flips outside the tracked width
  EXPECT_EQ(dist.totalFlips(), 0u);
}

TEST(BitDistributionTest, RejectsBadWidth) {
  EXPECT_THROW(BitErrorDistribution(0), std::invalid_argument);
  EXPECT_THROW(BitErrorDistribution(65), std::invalid_argument);
  EXPECT_NO_THROW(BitErrorDistribution(64));
}

}  // namespace
