// Adder-generator correctness: every topology, multiple widths, with and
// without carry-in — exhaustive at small widths, randomized at full width.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "circuits/adder_topologies.h"
#include "netlist/evaluator.h"

namespace {

using oisa::circuits::AdderPorts;
using oisa::circuits::AdderTopology;
using oisa::circuits::buildAdder;
using oisa::netlist::Evaluator;
using oisa::netlist::Netlist;
using oisa::netlist::NetId;

struct BuiltAdder {
  Netlist nl;
  int width;
  bool hasCin;
};

BuiltAdder makeAdder(int width, bool withCin, AdderTopology topo) {
  BuiltAdder built{Netlist("adder"), width, withCin};
  std::vector<NetId> a, b;
  for (int i = 0; i < width; ++i) {
    a.push_back(built.nl.input("a" + std::to_string(i)));
  }
  for (int i = 0; i < width; ++i) {
    b.push_back(built.nl.input("b" + std::to_string(i)));
  }
  std::optional<NetId> cin;
  if (withCin) cin = built.nl.input("cin");
  const AdderPorts ports = buildAdder(built.nl, a, b, cin, topo);
  for (int i = 0; i < width; ++i) {
    built.nl.output("s" + std::to_string(i),
                    ports.sum[static_cast<std::size_t>(i)]);
  }
  built.nl.output("cout", ports.carryOut);
  built.nl.validate();
  return built;
}

std::pair<std::uint64_t, bool> runAdder(const BuiltAdder& built,
                                        const Evaluator& eval,
                                        std::uint64_t a, std::uint64_t b,
                                        bool cin) {
  std::vector<std::uint8_t> in;
  for (int i = 0; i < built.width; ++i) {
    in.push_back(static_cast<std::uint8_t>((a >> i) & 1u));
  }
  for (int i = 0; i < built.width; ++i) {
    in.push_back(static_cast<std::uint8_t>((b >> i) & 1u));
  }
  if (built.hasCin) in.push_back(cin ? 1 : 0);
  const auto out = eval.evaluateOutputs(in);
  std::uint64_t sum = 0;
  for (int i = 0; i < built.width; ++i) {
    if (out[static_cast<std::size_t>(i)]) sum |= std::uint64_t{1} << i;
  }
  return {sum, out[static_cast<std::size_t>(built.width)] != 0};
}

using TopoWidthCin = std::tuple<AdderTopology, int, bool>;

class AdderTopologyTest : public ::testing::TestWithParam<TopoWidthCin> {};

TEST_P(AdderTopologyTest, ExhaustiveSmallWidths) {
  const auto [topo, width, withCin] = GetParam();
  if (width > 5) GTEST_SKIP() << "exhaustive only for small widths";
  const BuiltAdder built = makeAdder(width, withCin, topo);
  const Evaluator eval(built.nl);
  const std::uint64_t limit = std::uint64_t{1} << width;
  const std::uint64_t mask = limit - 1;
  for (std::uint64_t a = 0; a < limit; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      for (int cin = 0; cin <= (withCin ? 1 : 0); ++cin) {
        const auto [sum, cout] = runAdder(built, eval, a, b, cin != 0);
        const std::uint64_t expected = a + b + static_cast<std::uint64_t>(cin);
        EXPECT_EQ(sum, expected & mask);
        EXPECT_EQ(cout, (expected >> width) != 0);
      }
    }
  }
}

TEST_P(AdderTopologyTest, RandomizedLargeWidths) {
  const auto [topo, width, withCin] = GetParam();
  const BuiltAdder built = makeAdder(width, withCin, topo);
  const Evaluator eval(built.nl);
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  std::mt19937_64 rng(static_cast<std::uint64_t>(width) * 131u + 7u);
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t a = rng() & mask;
    const std::uint64_t b = rng() & mask;
    const bool cin = withCin && (rng() & 1u);
    const auto [sum, cout] = runAdder(built, eval, a, b, cin);
    // Reference via 128-bit-free arithmetic: split top bit.
    const std::uint64_t low =
        (a & (mask >> 1)) + (b & (mask >> 1)) + (cin ? 1u : 0u);
    const std::uint64_t topSum =
        ((a >> (width - 1)) & 1u) + ((b >> (width - 1)) & 1u) +
        ((low >> (width - 1)) & 1u);
    const std::uint64_t expectedSum =
        ((low & (mask >> 1)) |
         ((topSum & 1u) << (width - 1))) & mask;
    EXPECT_EQ(sum, expectedSum) << "a=" << a << " b=" << b << " cin=" << cin;
    EXPECT_EQ(cout, (topSum >> 1) != 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdderTopologyTest,
    ::testing::Combine(
        ::testing::Values(AdderTopology::RippleCarry,
                          AdderTopology::CarrySelect,
                          AdderTopology::CarryLookahead,
                          AdderTopology::BrentKung, AdderTopology::Sklansky,
                          AdderTopology::KoggeStone,
                          AdderTopology::HanCarlson),
        ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16, 32, 64),
        ::testing::Bool()),
    [](const auto& info) {
      std::string name(
          oisa::circuits::topologyName(std::get<0>(info.param)));
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_w" + std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_cin" : "_nocin");
    });

TEST(AdderAreaTest, PrefixAddersCostMoreGatesThanRipple) {
  const BuiltAdder rca = makeAdder(32, true, AdderTopology::RippleCarry);
  const BuiltAdder skl = makeAdder(32, true, AdderTopology::Sklansky);
  const BuiltAdder ks = makeAdder(32, true, AdderTopology::KoggeStone);
  EXPECT_LT(rca.nl.gateCount(), skl.nl.gateCount());
  EXPECT_LT(skl.nl.gateCount(), ks.nl.gateCount());
}

TEST(TreeHelperTest, AndOrTreesMatchReductions) {
  for (int n = 1; n <= 9; ++n) {
    for (std::uint64_t pattern = 0; pattern < (std::uint64_t{1} << n);
         ++pattern) {
      Netlist nl;
      std::vector<NetId> nets;
      for (int i = 0; i < n; ++i) {
        nets.push_back(nl.input("i" + std::to_string(i)));
      }
      nl.output("and", oisa::circuits::andTree(nl, nets));
      nl.output("or", oisa::circuits::orTree(nl, nets));
      const Evaluator eval(nl);
      std::vector<std::uint8_t> in;
      bool allOnes = true, anyOne = false;
      for (int i = 0; i < n; ++i) {
        const bool bit = ((pattern >> i) & 1u) != 0;
        in.push_back(bit ? 1 : 0);
        allOnes = allOnes && bit;
        anyOne = anyOne || bit;
      }
      const auto out = eval.evaluateOutputs(in);
      EXPECT_EQ(out[0] != 0, allOnes);
      EXPECT_EQ(out[1] != 0, anyOne);
    }
  }
}

TEST(BuildAdderTest, RejectsMismatchedSpans) {
  Netlist nl;
  const NetId a = nl.input("a");
  const std::vector<NetId> one{a};
  const std::vector<NetId> empty;
  EXPECT_THROW(
      (void)buildAdder(nl, one, empty, std::nullopt,
                       AdderTopology::RippleCarry),
      std::invalid_argument);
}

}  // namespace
