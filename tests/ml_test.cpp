// ML substrate tests: dataset mechanics, CART splits, forest behavior,
// baselines, metrics and serialization round-trips.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/serialize.h"

namespace {

using oisa::ml::ConfusionMatrix;
using oisa::ml::Dataset;
using oisa::ml::DecisionTree;
using oisa::ml::ForestParams;
using oisa::ml::MajorityClassifier;
using oisa::ml::RandomForest;
using oisa::ml::TreeParams;

Dataset xorDataset(int copies) {
  // Label = f0 XOR f1, with a few irrelevant noise features.
  Dataset data(4);
  std::mt19937_64 rng(3);
  for (int c = 0; c < copies; ++c) {
    for (int pattern = 0; pattern < 4; ++pattern) {
      const std::uint8_t f0 = pattern & 1;
      const std::uint8_t f1 = (pattern >> 1) & 1;
      const std::vector<std::uint8_t> row{
          f0, f1, static_cast<std::uint8_t>(rng() & 1),
          static_cast<std::uint8_t>(rng() & 1)};
      data.addRow(row, (f0 ^ f1) != 0);
    }
  }
  return data;
}

TEST(DatasetTest, StoresRowsAndLabels) {
  Dataset data(3);
  data.addRow(std::vector<std::uint8_t>{1, 0, 1}, true);
  data.addRow(std::vector<std::uint8_t>{0, 0, 0}, false);
  EXPECT_EQ(data.rowCount(), 2u);
  EXPECT_EQ(data.featureCount(), 3u);
  EXPECT_EQ(data.positiveCount(), 1u);
  EXPECT_TRUE(data.label(0));
  EXPECT_EQ(data.feature(0, 2), 1);
  EXPECT_EQ(data.row(1)[0], 0);
}

TEST(DatasetTest, RejectsBadShapes) {
  EXPECT_THROW(Dataset(0), std::invalid_argument);
  Dataset data(2);
  EXPECT_THROW(data.addRow(std::vector<std::uint8_t>{1}, true),
               std::invalid_argument);
}

TEST(DecisionTreeTest, LearnsXorExactly) {
  const Dataset data = xorDataset(25);
  DecisionTree tree;
  tree.fit(data, TreeParams{});
  for (std::size_t i = 0; i < data.rowCount(); ++i) {
    EXPECT_EQ(tree.predict(data.row(i)), data.label(i));
  }
  EXPECT_GE(tree.depth(), 2);  // XOR needs two levels
}

TEST(DecisionTreeTest, PureDataYieldsSingleLeaf) {
  Dataset data(2);
  for (int i = 0; i < 10; ++i) {
    data.addRow(std::vector<std::uint8_t>{
                    static_cast<std::uint8_t>(i & 1), 1},
                false);
  }
  DecisionTree tree;
  tree.fit(data, TreeParams{});
  EXPECT_EQ(tree.nodeCount(), 1u);
  EXPECT_FALSE(tree.predict(data.row(0)));
  EXPECT_DOUBLE_EQ(tree.predictProbability(data.row(0)), 0.0);
}

TEST(DecisionTreeTest, MaxDepthZeroIsMajorityVote) {
  Dataset data(1);
  for (int i = 0; i < 10; ++i) {
    data.addRow(std::vector<std::uint8_t>{static_cast<std::uint8_t>(i & 1)},
                i < 7);
  }
  DecisionTree tree;
  tree.fit(data, TreeParams{0, 2, 1, 0});
  EXPECT_EQ(tree.nodeCount(), 1u);
  EXPECT_TRUE(tree.predict(data.row(0)));
  EXPECT_NEAR(tree.predictProbability(data.row(0)), 0.7, 1e-6);
}

TEST(DecisionTreeTest, PredictBeforeFitThrows) {
  const DecisionTree tree;
  const std::vector<std::uint8_t> row{0};
  EXPECT_THROW((void)tree.predict(row), std::logic_error);
}

TEST(DecisionTreeTest, FitIsDeterministicGivenSeed) {
  const Dataset data = xorDataset(50);
  TreeParams params;
  params.featuresPerSplit = 2;
  DecisionTree t1, t2;
  t1.fit(data, params, 99);
  t2.fit(data, params, 99);
  ASSERT_EQ(t1.nodeCount(), t2.nodeCount());
  for (std::size_t i = 0; i < t1.nodes().size(); ++i) {
    EXPECT_EQ(t1.nodes()[i].feature, t2.nodes()[i].feature);
  }
}

TEST(RandomForestTest, LearnsNoisyMajorityFunction) {
  // Label = majority(f0, f1, f2) with 5% label noise: the forest should be
  // much better than chance and at least as good as the majority baseline.
  Dataset train(6), test(6);
  std::mt19937_64 rng(7);
  auto fill = [&](Dataset& d, int n) {
    for (int i = 0; i < n; ++i) {
      std::vector<std::uint8_t> row(6);
      for (auto& v : row) v = static_cast<std::uint8_t>(rng() & 1);
      bool label = (row[0] + row[1] + row[2]) >= 2;
      if ((rng() % 100) < 5) label = !label;
      d.addRow(row, label);
    }
  };
  fill(train, 2000);
  fill(test, 1000);

  RandomForest forest;
  ForestParams params;
  params.treeCount = 15;
  forest.fit(train, params, 11);
  const ConfusionMatrix cm = evaluate(forest, test);
  EXPECT_GT(cm.accuracy(), 0.9);

  MajorityClassifier baseline;
  baseline.fit(train);
  const ConfusionMatrix base = evaluate(baseline, test);
  EXPECT_GT(cm.accuracy(), base.accuracy());
}

TEST(RandomForestTest, ConstantLabelsShortCircuitToOneLeaf) {
  Dataset data(4);
  std::mt19937_64 rng(13);
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> row(4);
    for (auto& v : row) v = static_cast<std::uint8_t>(rng() & 1);
    data.addRow(row, false);
  }
  RandomForest forest;
  forest.fit(data, ForestParams{}, 1);
  EXPECT_EQ(forest.trees().size(), 1u);
  EXPECT_FALSE(forest.predict(data.row(0)));
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  const Dataset data = xorDataset(100);
  ForestParams params;
  params.treeCount = 5;
  RandomForest f1, f2;
  f1.fit(data, params, 21);
  f2.fit(data, params, 21);
  std::mt19937_64 rng(23);
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> row(4);
    for (auto& v : row) v = static_cast<std::uint8_t>(rng() & 1);
    EXPECT_DOUBLE_EQ(f1.predictProbability(row), f2.predictProbability(row));
  }
}

TEST(RandomForestTest, RejectsDegenerateParams) {
  Dataset empty(2);
  RandomForest forest;
  EXPECT_THROW(forest.fit(empty, ForestParams{}), std::invalid_argument);
  Dataset one(2);
  one.addRow(std::vector<std::uint8_t>{0, 1}, true);
  ForestParams zeroTrees;
  zeroTrees.treeCount = 0;
  EXPECT_THROW(forest.fit(one, zeroTrees), std::invalid_argument);
}

TEST(ConfusionMatrixTest, DerivedScores) {
  ConfusionMatrix cm;
  // 8 TP, 2 FN, 1 FP, 9 TN.
  for (int i = 0; i < 8; ++i) cm.add(true, true);
  for (int i = 0; i < 2; ++i) cm.add(false, true);
  cm.add(true, false);
  for (int i = 0; i < 9; ++i) cm.add(false, false);
  EXPECT_EQ(cm.total(), 20u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 17.0 / 20.0);
  EXPECT_DOUBLE_EQ(cm.precision(), 8.0 / 9.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 8.0 / 10.0);
  EXPECT_NEAR(cm.f1(),
              2.0 * (8.0 / 9.0) * 0.8 / ((8.0 / 9.0) + 0.8), 1e-12);
}

TEST(SerializationTest, TreeRoundTripPreservesPredictions) {
  const Dataset data = xorDataset(50);
  DecisionTree tree;
  tree.fit(data, TreeParams{});
  std::stringstream ss;
  saveTree(tree, ss);
  const DecisionTree loaded = oisa::ml::loadTree(ss);
  for (std::size_t i = 0; i < data.rowCount(); ++i) {
    EXPECT_EQ(loaded.predict(data.row(i)), tree.predict(data.row(i)));
  }
}

TEST(SerializationTest, ForestRoundTripPreservesProbabilities) {
  const Dataset data = xorDataset(50);
  RandomForest forest;
  ForestParams params;
  params.treeCount = 7;
  forest.fit(data, params, 5);
  std::stringstream ss;
  saveForest(forest, ss);
  const RandomForest loaded = oisa::ml::loadForest(ss);
  ASSERT_EQ(loaded.trees().size(), forest.trees().size());
  for (std::size_t i = 0; i < data.rowCount(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.predictProbability(data.row(i)),
                     forest.predictProbability(data.row(i)));
  }
}

TEST(SerializationTest, RejectsCorruptStreams) {
  std::stringstream bad("nonsense 3");
  EXPECT_THROW((void)oisa::ml::loadTree(bad), std::runtime_error);
  std::stringstream truncated("tree 2\n0 1 2 0.5\n");
  EXPECT_THROW((void)oisa::ml::loadTree(truncated), std::runtime_error);
  std::stringstream badChild("tree 1\n0 7 9 0.5\n");
  EXPECT_THROW((void)oisa::ml::loadTree(badChild), std::runtime_error);
}

}  // namespace
