// oisa_obs: the telemetry substrate's own guarantees. Counters must be
// exact under concurrent hammering (sharded relaxed atomics still sum to
// the true total at a quiescent point), histograms must count/sum/max
// exactly with log2 bucketing, the span ring must drop-and-count instead
// of blocking on overflow, the JSON writers must emit the documented
// schemas (CI re-validates the artifacts with python -m json.tool), and
// the whole substrate must degenerate to near-nothing when disabled.
// This binary is also in the thread-sanitizer CI leg: the hammer tests
// double as data-race detectors there.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/run_meta.h"
#include "obs/span.h"

namespace {

using namespace oisa;

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::resetMetricsForTest();
    obs::setMetricsEnabled(true);
    obs::stopTracing();
  }
  void TearDown() override {
    obs::stopTracing();
    obs::setMetricsEnabled(true);
  }
};

// --- metrics registry --------------------------------------------------

TEST_F(ObsTest, CounterSumIsExactUnderConcurrentHammer) {
  obs::Counter& c = obs::counter("test.hammer");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  // Quiescent point: every writer joined, so the shard sum is exact.
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  const obs::MetricsSnapshot snap = obs::snapshotMetrics();
  EXPECT_EQ(snap.counters.at("test.hammer"), kThreads * kPerThread);
}

TEST_F(ObsTest, CounterHandleIsStableAndInterned) {
  obs::Counter& a = obs::counter("test.same");
  obs::Counter& b = obs::counter("test.same");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
}

TEST_F(ObsTest, DisabledMetricsRecordNothing) {
  obs::Counter& c = obs::counter("test.disabled");
  obs::Histogram& h = obs::histogram("test.disabled_hist");
  obs::setMetricsEnabled(false);
  c.add(100);
  h.record(42);
  obs::setMetricsEnabled(true);
  EXPECT_EQ(c.value(), 0u);
  const obs::MetricsSnapshot snap = obs::snapshotMetrics();
  EXPECT_EQ(snap.histograms.at("test.disabled_hist").count, 0u);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);  // re-enabled handle keeps working
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  obs::Gauge& g = obs::gauge("test.gauge");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  const obs::MetricsSnapshot snap = obs::snapshotMetrics();
  EXPECT_EQ(snap.gauges.at("test.gauge"), 7);
}

TEST_F(ObsTest, HistogramExactCountSumMaxAndLog2Buckets) {
  obs::Histogram& h = obs::histogram("test.hist");
  h.record(0);   // bucket 0 (zeros)
  h.record(1);   // bucket 1: [1,2)
  h.record(7);   // bucket 3: [4,8)
  h.record(8);   // bucket 4: [8,16)
  h.record(1000);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1016u);
  EXPECT_EQ(h.max(), 1000u);
  const obs::MetricsSnapshot snap = obs::snapshotMetrics();
  const auto& s = snap.histograms.at("test.hist");
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 1016u);
  EXPECT_EQ(s.max, 1000u);
  // Snapshot buckets carry (lower bound, count) for non-empty buckets:
  // 0 -> lower 0, 1 -> lower 1, 7 -> lower 4, 8 -> lower 8, 1000 -> 512.
  std::map<std::uint64_t, std::uint64_t> got(s.buckets.begin(),
                                             s.buckets.end());
  const std::map<std::uint64_t, std::uint64_t> want = {
      {0, 1}, {1, 1}, {4, 1}, {8, 1}, {512, 1}};
  EXPECT_EQ(got, want);
}

TEST_F(ObsTest, HistogramConcurrentHammerKeepsCountAndSumExact) {
  obs::Histogram& h = obs::histogram("test.hist_hammer");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t) + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  // sum of (t+1)*kPerThread for t in [0,8) = kPerThread * 36
  EXPECT_EQ(h.sum(), kPerThread * 36);
  EXPECT_EQ(h.max(), 8u);
}

TEST_F(ObsTest, MetricsJsonCarriesSchemaMetaSectionsAndFleet) {
  obs::counter("test.json_counter").add(5);
  obs::gauge("test.json_gauge").set(-2);
  obs::histogram("test.json_hist").record(3);
  const std::map<std::string, std::string> meta = {{"git_sha", "abc"},
                                                   {"note", "q\"uote"}};
  const std::map<std::string, std::uint64_t> fleet = {{"fleet.cells", 12}};
  const std::string doc =
      obs::metricsJson(obs::snapshotMetrics(), meta, &fleet);
  EXPECT_NE(doc.find("\"schema\": \"oisa-metrics-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"git_sha\": \"abc\""), std::string::npos);
  EXPECT_NE(doc.find("q\\\"uote"), std::string::npos);  // escaped
  EXPECT_NE(doc.find("\"test.json_counter\": 5"), std::string::npos);
  EXPECT_NE(doc.find("\"test.json_gauge\": -2"), std::string::npos);
  EXPECT_NE(doc.find("\"test.json_hist\""), std::string::npos);
  EXPECT_NE(doc.find("\"fleet\""), std::string::npos);
  EXPECT_NE(doc.find("\"fleet.cells\": 12"), std::string::npos);
}

TEST_F(ObsTest, JsonEscaping) {
  std::string out;
  obs::appendJsonEscaped(out, "a\"b\\c\nd\te\x01");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\u0001");
}

TEST_F(ObsTest, RunMetadataHasTheAttributionKeys) {
  const auto meta = obs::runMetadata();
  EXPECT_EQ(meta.count("git_sha"), 1u);
  EXPECT_EQ(meta.count("hostname"), 1u);
  EXPECT_EQ(meta.count("pid"), 1u);
  EXPECT_EQ(meta.count("hw_threads"), 1u);
  EXPECT_FALSE(meta.at("git_sha").empty());
}

// --- span tracing ------------------------------------------------------

TEST_F(ObsTest, SpansRecordNameCategoryDurationAndNesting) {
  obs::startTracing();
  {
    const obs::ObsSpan outer("outer", "test");
    const obs::ObsSpan inner("inner", "test", "cells", 42);
  }
  obs::traceInstant("marker", "test");
  const std::string doc = obs::drainTraceJson();
  obs::stopTracing();
  // Chrome trace-event format: inner closes first (depth 1), then outer
  // (depth 0); the instant event carries "s": "t".
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  const std::size_t innerPos = doc.find("\"name\": \"inner\"");
  const std::size_t outerPos = doc.find("\"name\": \"outer\"");
  ASSERT_NE(innerPos, std::string::npos);
  ASSERT_NE(outerPos, std::string::npos);
  EXPECT_LT(innerPos, outerPos);
  EXPECT_NE(doc.find("\"cells\": 42"), std::string::npos);
  EXPECT_NE(doc.find("\"depth\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"marker\""), std::string::npos);
  EXPECT_NE(doc.find("\"s\": \"t\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"schema\": \"oisa-trace-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
}

TEST_F(ObsTest, DisarmedSpansCostNothingAndRecordNothing) {
  // No startTracing: spans are disarmed no-ops.
  {
    const obs::ObsSpan span("ghost", "test");
  }
  obs::startTracing();
  const std::string doc = obs::drainTraceJson();
  obs::stopTracing();
  EXPECT_EQ(doc.find("ghost"), std::string::npos);
  EXPECT_NE(doc.find("\"drained\": 0"), std::string::npos);
}

TEST_F(ObsTest, RingOverflowDropsAndCountsInsteadOfBlocking) {
  obs::startTracing(8);  // tiny ring: capacity rounds to 8
  for (int i = 0; i < 100; ++i) {
    const obs::ObsSpan span("evt", "test");
  }
  EXPECT_EQ(obs::traceDropped(), 100u - 8u);
  const std::string doc = obs::drainTraceJson();
  obs::stopTracing();
  EXPECT_NE(doc.find("\"dropped\": 92"), std::string::npos);
  EXPECT_NE(doc.find("\"drained\": 8"), std::string::npos);
}

TEST_F(ObsTest, ConcurrentSpansAllLandWhenTheRingIsLargeEnough) {
  obs::startTracing(1 << 12);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        const obs::ObsSpan span("par", "test");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(obs::traceDropped(), 0u);
  const std::string doc = obs::drainTraceJson();
  obs::stopTracing();
  std::ostringstream want;
  want << "\"drained\": " << kThreads * kPerThread;
  EXPECT_NE(doc.find(want.str()), std::string::npos);
}

TEST_F(ObsTest, StopStartTracingIsSafeWhileSpansRace) {
  // Lifetime guarantee under TSan: rings are retired, never freed, so a
  // span holding the old ring across a stop/start cannot use-after-free.
  std::atomic<bool> stop{false};
  std::thread spanner([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::ObsSpan span("racer", "test");
    }
  });
  for (int i = 0; i < 50; ++i) {
    obs::startTracing(64);
    obs::stopTracing();
  }
  stop.store(true);
  spanner.join();
}

TEST_F(ObsTest, WriteTraceJsonRoundTripsThroughAFile) {
  obs::startTracing();
  {
    const obs::ObsSpan span("file_span", "test");
  }
  const std::string path = ::testing::TempDir() + "obs_trace.json";
  ASSERT_TRUE(obs::writeTraceJson(path).isOk());
  obs::stopTracing();
  std::ifstream is(path);
  std::stringstream buf;
  buf << is.rdbuf();
  EXPECT_NE(buf.str().find("\"file_span\""), std::string::npos);
  std::remove(path.c_str());
}

// --- event log ---------------------------------------------------------

TEST_F(ObsTest, EventLogWritesOneJsonObjectPerLine) {
  const std::string path = ::testing::TempDir() + "obs_events.jsonl";
  {
    obs::EventLog log(path);
    ASSERT_TRUE(log.enabled());
    log.event("spawn").u64("shard", 0).u64("launch", 1);
    log.event("quarantine")
        .u64("cell", 5)
        .u64("strikes", 3)
        .str("exit", "signal 9 (\"SIGKILL\")");
  }
  std::ifstream is(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"event\": \"spawn\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"ts_ms\": "), std::string::npos);
  EXPECT_NE(lines[0].find("\"shard\": 0"), std::string::npos);
  EXPECT_NE(lines[1].find("\"cell\": 5"), std::string::npos);
  EXPECT_NE(lines[1].find("\\\"SIGKILL\\\""), std::string::npos);  // escaped
  EXPECT_EQ(lines[0].front(), '{');
  EXPECT_EQ(lines[0].back(), '}');
  std::remove(path.c_str());
}

TEST_F(ObsTest, DisabledEventLogIsANoOp) {
  obs::EventLog log;  // no path
  EXPECT_FALSE(log.enabled());
  log.event("ignored").u64("x", 1);  // must not crash
}

}  // namespace
