// Bit-level timing-error predictor tests: feature layout, ABPER/AVPE
// semantics against synthetic traces with known error processes.
#include <gtest/gtest.h>

#include <random>
#include <algorithm>
#include <numeric>
#include <sstream>

#include "predict/bit_predictor.h"
#include "predict/features.h"

namespace {

using oisa::predict::BitLevelPredictor;
using oisa::predict::FeatureExtractor;
using oisa::predict::ModelKind;
using oisa::predict::PredictedFlips;
using oisa::predict::PredictorParams;
using oisa::predict::Trace;
using oisa::predict::TraceRecord;

TraceRecord makeRecord(std::uint64_t a, std::uint64_t b, std::uint64_t gold,
                       std::uint64_t silver) {
  TraceRecord r;
  r.a = a;
  r.b = b;
  r.gold = gold;
  r.silver = silver;
  r.diamond = gold;
  return r;
}

TEST(FeatureExtractorTest, LayoutMatchesDocumentation) {
  const FeatureExtractor fx(4);
  EXPECT_EQ(fx.featureCount(), 2u * 9u + 2u);
  EXPECT_EQ(fx.outputBitCount(), 5);

  TraceRecord prev = makeRecord(0b0001, 0b0010, 0b0011, 0b0011);
  prev.carryIn = true;
  const TraceRecord cur = makeRecord(0b1000, 0b0100, 0b1100, 0b1100);
  const auto f = fx.extract(prev, cur, /*bit=*/2);

  // Current cycle: a=1000 (bit3 set), b=0100 (bit2 set), cin=0.
  EXPECT_EQ(f[0], 0);  // a0[t]
  EXPECT_EQ(f[3], 1);  // a3[t]
  EXPECT_EQ(f[6], 1);  // b2[t]
  EXPECT_EQ(f[8], 0);  // cin[t]
  // Previous cycle block starts at 9.
  EXPECT_EQ(f[9], 1);   // a0[t-1]
  EXPECT_EQ(f[14], 1);  // b1[t-1]
  EXPECT_EQ(f[17], 1);  // cin[t-1]
  // Output-bit features: yRTL_2[t-1] = bit2 of 0b0011 = 0;
  // yRTL_2[t] = bit2 of 0b1100 = 1.
  EXPECT_EQ(f[18], 0);
  EXPECT_EQ(f[19], 1);
}

TEST(FeatureExtractorTest, AblationDropsOutputBits) {
  const FeatureExtractor fx(4, /*includeOutputBits=*/false);
  EXPECT_EQ(fx.featureCount(), 18u);
}

TEST(FeatureExtractorTest, CarryOutIsBitWidth) {
  TraceRecord r;
  r.gold = 0;
  r.goldCout = true;
  r.silver = 0;
  r.silverCout = false;
  EXPECT_TRUE(FeatureExtractor::goldBit(r, 8, 8));
  EXPECT_FALSE(FeatureExtractor::silverBit(r, 8, 8));
  EXPECT_TRUE(FeatureExtractor::timingErroneous(r, 8, 8));
  EXPECT_FALSE(FeatureExtractor::timingErroneous(r, 0, 8));
}

// Synthetic trace with a deterministic error rule the model can learn:
// sum bit 1 flips whenever a-bit0 is 1 in the current cycle AND was 0 in
// the previous cycle (a "transition sensitized" bit).
Trace deterministicTrace(int cycles, std::uint64_t seed) {
  Trace trace;
  std::mt19937_64 rng(seed);
  std::uint64_t prevA = 0;
  for (int t = 0; t < cycles; ++t) {
    const std::uint64_t a = rng() & 0xfu;
    const std::uint64_t b = rng() & 0xfu;
    const std::uint64_t gold = (a + b) & 0xfu;
    std::uint64_t silver = gold;
    if ((a & 1u) != 0 && (prevA & 1u) == 0) silver ^= 0b10u;
    trace.push_back(makeRecord(a, b, gold, silver));
    prevA = a;
  }
  return trace;
}

TEST(BitPredictorTest, LearnsDeterministicTransitionRule) {
  const Trace train = deterministicTrace(4000, 31);
  const Trace test = deterministicTrace(2000, 37);
  PredictorParams params;
  params.forest.treeCount = 10;
  BitLevelPredictor predictor(4, params);
  predictor.fit(train);
  const auto eval = predictor.evaluate(test);
  EXPECT_LT(eval.abper, 0.01);
  EXPECT_EQ(eval.cycles, test.size() - 1);
}

TEST(BitPredictorTest, PerfectCircuitGivesZeroAbperAndAvpe) {
  Trace trace;
  std::mt19937_64 rng(41);
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t a = rng() & 0xffu;
    const std::uint64_t b = rng() & 0xffu;
    const std::uint64_t gold = (a + b) & 0xffu;
    trace.push_back(makeRecord(a, b, gold, gold));
  }
  BitLevelPredictor predictor(8);
  predictor.fit(trace);
  const auto eval = predictor.evaluate(trace);
  EXPECT_EQ(eval.abper, 0.0);
  EXPECT_EQ(eval.avpe, 0.0);
}

TEST(BitPredictorTest, PredictedSilverIsGoldXorFlips) {
  PredictedFlips flips;
  flips.sumFlips = 0b1010;
  EXPECT_EQ(flips.predictedSilver(0b1111), 0b0101u);
  EXPECT_EQ(flips.predictedSilver(0b0000), 0b1010u);
}

TEST(BitPredictorTest, MispredictedMsbInflatesAvpeNotAbper) {
  // Construct a trace where exactly one cycle in fifty flips the MSB of an
  // 8-bit value: a majority model predicts "never flips", giving tiny
  // ABPER but (relatively) large AVPE contributions — the paper's Fig. 8
  // observation about designs like (16,1,0,2).
  Trace trace;
  std::mt19937_64 rng(53);
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t a = rng() & 0xffu;
    const std::uint64_t b = rng() & 0xffu;
    const std::uint64_t gold = ((a + b) & 0xffu) | 0x01u;  // keep nonzero
    const std::uint64_t silver = (t % 50 == 0) ? (gold ^ 0x80u) : gold;
    trace.push_back(makeRecord(a, b, gold, silver));
  }
  PredictorParams params;
  params.model = ModelKind::Majority;
  BitLevelPredictor predictor(8, params);
  predictor.fit(trace);
  const auto eval = predictor.evaluate(trace);
  // One bit out of nine wrong once per 50 cycles.
  EXPECT_NEAR(eval.abper, 0.02 / 9.0, 0.002);
  // Each missed MSB flip contributes ~|128|/value, a large relative error.
  EXPECT_GT(eval.avpe, 10.0 * eval.abper);
}

TEST(BitPredictorTest, ModelKindsAreOrderedOnLearnableData) {
  const Trace train = deterministicTrace(4000, 61);
  const Trace test = deterministicTrace(2000, 67);
  auto abperOf = [&](ModelKind kind) {
    PredictorParams params;
    params.model = kind;
    BitLevelPredictor predictor(4, params);
    predictor.fit(train);
    return predictor.evaluate(test).abper;
  };
  const double rf = abperOf(ModelKind::RandomForest);
  const double dt = abperOf(ModelKind::DecisionTree);
  const double mj = abperOf(ModelKind::Majority);
  // The rule is learnable: both tree models beat the majority baseline.
  EXPECT_LT(rf, mj);
  EXPECT_LT(dt, mj);
}

TEST(BitPredictorTest, GuardsAgainstMisuse) {
  BitLevelPredictor predictor(4);
  const Trace tiny(1);
  EXPECT_THROW(predictor.fit(tiny), std::invalid_argument);
  const Trace two(2);
  EXPECT_THROW((void)predictor.evaluate(two), std::logic_error);
  TraceRecord a, b;
  EXPECT_THROW((void)predictor.predictFlips(a, b), std::logic_error);
}

TEST(BitPredictorTest, SaveLoadRoundTripPreservesPredictions) {
  const Trace train = deterministicTrace(3000, 71);
  const Trace test = deterministicTrace(1000, 73);
  PredictorParams params;
  params.forest.treeCount = 5;
  BitLevelPredictor predictor(4, params);
  predictor.fit(train);

  std::stringstream ss;
  predictor.save(ss);
  const BitLevelPredictor loaded = BitLevelPredictor::load(ss);
  EXPECT_TRUE(loaded.trained());
  for (std::size_t t = 1; t < test.size(); ++t) {
    const auto original = predictor.predictFlips(test[t - 1], test[t]);
    const auto reloaded = loaded.predictFlips(test[t - 1], test[t]);
    EXPECT_EQ(original.sumFlips, reloaded.sumFlips);
    EXPECT_EQ(original.coutFlip, reloaded.coutFlip);
  }
  const auto e1 = predictor.evaluate(test);
  const auto e2 = loaded.evaluate(test);
  EXPECT_DOUBLE_EQ(e1.abper, e2.abper);
  EXPECT_DOUBLE_EQ(e1.avpe, e2.avpe);
}

TEST(BitPredictorTest, SaveRejectsNonForestModels) {
  PredictorParams params;
  params.model = ModelKind::Majority;
  BitLevelPredictor predictor(4, params);
  predictor.fit(deterministicTrace(100, 79));
  std::stringstream ss;
  EXPECT_THROW(predictor.save(ss), std::logic_error);
  BitLevelPredictor untrained(4);
  EXPECT_THROW(untrained.save(ss), std::logic_error);
}

TEST(BitPredictorTest, LoadRejectsCorruptStreams) {
  std::stringstream bad("wrongheader 4 1 5");
  EXPECT_THROW((void)BitLevelPredictor::load(bad), std::runtime_error);
  std::stringstream shortBank("bitpredictor 4 1 2\n");
  EXPECT_THROW((void)BitLevelPredictor::load(shortBank), std::runtime_error);
}

TEST(BitPredictorTest, FeatureImportanceHighlightsCausalInputs) {
  // The synthetic rule flips bit 1 based on a0[t] and a0[t-1]: those two
  // features must carry substantial importance mass.
  const Trace train = deterministicTrace(5000, 83);
  PredictorParams params;
  params.forest.treeCount = 10;
  BitLevelPredictor predictor(4, params);
  predictor.fit(train);
  const auto importance = predictor.featureImportance();
  const auto& fx = predictor.extractor();
  ASSERT_EQ(importance.size(), fx.featureCount());

  // The two causal features must rank first and second; deep noise splits
  // dilute absolute mass, so rank is the robust assertion.
  std::vector<std::size_t> order(importance.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return importance[x] > importance[y];
  });
  const std::string first = fx.featureName(order[0]);
  const std::string second = fx.featureName(order[1]);
  EXPECT_TRUE((first == "a0[t]" && second == "a0[t-1]") ||
              (first == "a0[t-1]" && second == "a0[t]"))
      << "top-2 were " << first << ", " << second;
  double total = 0.0;
  for (const double v : importance) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(FeatureExtractorTest, FeatureNamesMatchLayout) {
  const oisa::predict::FeatureExtractor fx(4);
  EXPECT_EQ(fx.featureName(0), "a0[t]");
  EXPECT_EQ(fx.featureName(3), "a3[t]");
  EXPECT_EQ(fx.featureName(4), "b0[t]");
  EXPECT_EQ(fx.featureName(8), "cin[t]");
  EXPECT_EQ(fx.featureName(9), "a0[t-1]");
  EXPECT_EQ(fx.featureName(17), "cin[t-1]");
  EXPECT_EQ(fx.featureName(18), "yRTL_n[t-1]");
  EXPECT_EQ(fx.featureName(19), "yRTL_n[t]");
  EXPECT_THROW((void)fx.featureName(20), std::invalid_argument);
}

TEST(BitPredictorTest, AvpeSkipsZeroSilverCycles) {
  Trace trace;
  for (int t = 0; t < 100; ++t) {
    trace.push_back(makeRecord(0, 0, 0, 0));  // silver == 0 every cycle
  }
  BitLevelPredictor predictor(4);
  predictor.fit(trace);
  const auto eval = predictor.evaluate(trace);
  EXPECT_EQ(eval.avpeSkipped, eval.cycles);
  EXPECT_EQ(eval.avpe, 0.0);
}

}  // namespace
