// Voltage-scaling model tests.
#include <gtest/gtest.h>

#include "circuits/isa_netlist.h"
#include "timing/sta.h"
#include "timing/voltage.h"

namespace {

using oisa::timing::CellLibrary;
using oisa::timing::libraryAtVoltage;
using oisa::timing::voltageDelayFactor;
using oisa::timing::voltageEnergyFactor;
using oisa::timing::voltageForDelay;
using oisa::timing::VoltageModel;

TEST(VoltageTest, NominalVoltageIsUnityFactor) {
  EXPECT_DOUBLE_EQ(voltageDelayFactor(1.2), 1.0);
  EXPECT_DOUBLE_EQ(voltageEnergyFactor(1.2), 1.0);
}

TEST(VoltageTest, LowerVoltageIsSlowerAndCheaper) {
  double previous = voltageDelayFactor(1.2);
  for (const double vdd : {1.1, 1.0, 0.9, 0.8, 0.7}) {
    const double factor = voltageDelayFactor(vdd);
    EXPECT_GT(factor, previous) << vdd;
    previous = factor;
    EXPECT_LT(voltageEnergyFactor(vdd), 1.0);
  }
  // Approaching threshold: delay explodes.
  EXPECT_GT(voltageDelayFactor(0.40), 5.0);
}

TEST(VoltageTest, RejectsSubThresholdSupply) {
  EXPECT_THROW((void)voltageDelayFactor(0.35), std::invalid_argument);
  EXPECT_THROW((void)voltageDelayFactor(0.1), std::invalid_argument);
}

TEST(VoltageTest, LibraryScalingMatchesFactor) {
  const CellLibrary nominal = CellLibrary::generic65();
  const double factor = voltageDelayFactor(1.0);
  const CellLibrary scaled = libraryAtVoltage(nominal, 1.0);
  for (const auto kind : oisa::netlist::allGateKinds()) {
    EXPECT_NEAR(scaled.cell(kind).intrinsicNs,
                nominal.cell(kind).intrinsicNs * factor, 1e-12);
    EXPECT_DOUBLE_EQ(scaled.cell(kind).area, nominal.cell(kind).area);
  }
  // Whole-netlist critical delay scales linearly with the factor.
  const auto nl =
      oisa::circuits::buildIsaNetlist(oisa::core::makeIsa(8, 0, 0, 4));
  const oisa::timing::DelayAnnotation base(nl, nominal);
  const oisa::timing::DelayAnnotation slow(nl, scaled);
  EXPECT_NEAR(criticalDelayNs(nl, slow),
              criticalDelayNs(nl, base) * factor, 1e-9);
}

TEST(VoltageTest, VoltageForDelayInvertsTheModel) {
  const VoltageModel model;
  // A design with 0.26 ns nominal critical delay run at a 0.3 ns clock can
  // scale down to the voltage where the factor is 0.3/0.26.
  const double vdd = voltageForDelay(0.26, 0.30, model);
  EXPECT_LT(vdd, model.nominalVdd);
  EXPECT_NEAR(voltageDelayFactor(vdd, model), 0.30 / 0.26, 1e-6);
  // Needing to be faster than nominal requires raising the supply.
  const double boost = voltageForDelay(0.30, 0.26, model);
  EXPECT_GT(boost, model.nominalVdd);
  EXPECT_THROW((void)voltageForDelay(1.0, 0.0001), std::invalid_argument);
  EXPECT_THROW((void)voltageForDelay(-1.0, 0.3), std::invalid_argument);
}

}  // namespace
