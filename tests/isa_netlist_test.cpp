// Gate-level ISA generator tests: SPEC/COMP blocks in isolation (including
// failure injection of the spurious-carry path that the full adder can
// never sensitize), and the headline invariant — generated netlists are
// bit-identical to the behavioral model for every paper design.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "circuits/compensation.h"
#include "circuits/isa_netlist.h"
#include "circuits/speculator.h"
#include "core/isa_adder.h"
#include "netlist/evaluator.h"

namespace {

using oisa::circuits::AdderTopology;
using oisa::circuits::buildCompensation;
using oisa::circuits::buildIsaNetlist;
using oisa::circuits::buildSpeculator;
using oisa::circuits::CompensationPorts;
using oisa::circuits::IsaBuildOptions;
using oisa::circuits::packOperands;
using oisa::circuits::unpackCarryOut;
using oisa::circuits::unpackSum;
using oisa::core::IsaAdder;
using oisa::core::IsaConfig;
using oisa::netlist::Evaluator;
using oisa::netlist::Netlist;
using oisa::netlist::NetId;

TEST(SpeculatorTest, MatchesWindowCarryExhaustively) {
  for (int s = 1; s <= 7; ++s) {
    Netlist nl;
    std::vector<NetId> a, b;
    for (int i = 0; i < s; ++i) a.push_back(nl.input("a" + std::to_string(i)));
    for (int i = 0; i < s; ++i) b.push_back(nl.input("b" + std::to_string(i)));
    nl.output("spec", buildSpeculator(nl, a, b));
    const Evaluator eval(nl);
    const std::uint64_t limit = std::uint64_t{1} << s;
    for (std::uint64_t av = 0; av < limit; ++av) {
      for (std::uint64_t bv = 0; bv < limit; ++bv) {
        std::vector<std::uint8_t> in;
        for (int i = 0; i < s; ++i) {
          in.push_back(static_cast<std::uint8_t>((av >> i) & 1u));
        }
        for (int i = 0; i < s; ++i) {
          in.push_back(static_cast<std::uint8_t>((bv >> i) & 1u));
        }
        const bool expected = ((av + bv) >> s) & 1u;
        EXPECT_EQ(eval.evaluateOutputs(in)[0] != 0, expected)
            << "s=" << s << " a=" << av << " b=" << bv;
      }
    }
  }
}

// COMP block in isolation, spec/coutPrev freely injectable — this is the
// only way to exercise the spurious-carry (decrement) branch, which the
// generate-based speculator can never produce in a full ISA.
struct CompFixture {
  Netlist nl{"comp"};
  int k;
  int r;
  int c;
  std::vector<NetId> localSum, prevTop;
  NetId spec, coutPrev;

  CompFixture(int kBits, int cBits, int rBits)
      : k(kBits), r(rBits), c(cBits) {
    spec = nl.input("spec");
    coutPrev = nl.input("coutPrev");
    for (int i = 0; i < k; ++i) {
      localSum.push_back(nl.input("sum" + std::to_string(i)));
    }
    for (int i = 0; i < r; ++i) {
      prevTop.push_back(nl.input("prev" + std::to_string(i)));
    }
    const CompensationPorts ports =
        buildCompensation(nl, spec, coutPrev, localSum, prevTop, c);
    for (int i = 0; i < k; ++i) {
      nl.output("cs" + std::to_string(i),
                ports.correctedSum[static_cast<std::size_t>(i)]);
    }
    for (int i = 0; i < r; ++i) {
      nl.output("bp" + std::to_string(i),
                ports.balancedPrevTop[static_cast<std::size_t>(i)]);
    }
    nl.output("fault", ports.fault);
    nl.output("corrected", ports.corrected);
    nl.validate();
  }

  struct Result {
    std::uint64_t correctedSum;
    std::uint64_t balancedPrevTop;
    bool fault;
    bool corrected;
  };

  Result run(bool specV, bool coutV, std::uint64_t sum,
             std::uint64_t prev) const {
    const Evaluator eval(nl);
    std::vector<std::uint8_t> in{specV ? std::uint8_t{1} : std::uint8_t{0},
                                 coutV ? std::uint8_t{1} : std::uint8_t{0}};
    for (int i = 0; i < k; ++i) {
      in.push_back(static_cast<std::uint8_t>((sum >> i) & 1u));
    }
    for (int i = 0; i < r; ++i) {
      in.push_back(static_cast<std::uint8_t>((prev >> i) & 1u));
    }
    const auto out = eval.evaluateOutputs(in);
    Result res{0, 0, false, false};
    for (int i = 0; i < k; ++i) {
      if (out[static_cast<std::size_t>(i)]) res.correctedSum |= 1ull << i;
    }
    for (int i = 0; i < r; ++i) {
      if (out[static_cast<std::size_t>(k + i)]) {
        res.balancedPrevTop |= 1ull << i;
      }
    }
    res.fault = out[static_cast<std::size_t>(k + r)] != 0;
    res.corrected = out[static_cast<std::size_t>(k + r + 1)] != 0;
    return res;
  }
};

TEST(CompensationTest, NoFaultPassesThrough) {
  const CompFixture fix(4, 1, 2);
  for (const bool carry : {false, true}) {
    const auto res = fix.run(carry, carry, 0b0101, 0b01);
    EXPECT_FALSE(res.fault);
    EXPECT_FALSE(res.corrected);
    EXPECT_EQ(res.correctedSum, 0b0101u);
    EXPECT_EQ(res.balancedPrevTop, 0b01u);
  }
}

TEST(CompensationTest, MissedCarryIncrementsWhenPossible) {
  const CompFixture fix(4, 2, 2);
  // local sum 0b0101: low 2 bits = 01, not all ones -> +1 -> 0b0110.
  const auto res = fix.run(false, true, 0b0101, 0b10);
  EXPECT_TRUE(res.fault);
  EXPECT_TRUE(res.corrected);
  EXPECT_EQ(res.correctedSum, 0b0110u);
  EXPECT_EQ(res.balancedPrevTop, 0b10u);  // untouched
}

TEST(CompensationTest, MissedCarryBalancesWhenLowBitsSaturated) {
  const CompFixture fix(4, 2, 2);
  // low 2 bits = 11: +1 would overflow the group -> balance prev to ones.
  const auto res = fix.run(false, true, 0b0111, 0b00);
  EXPECT_TRUE(res.fault);
  EXPECT_FALSE(res.corrected);
  EXPECT_EQ(res.correctedSum, 0b0111u);
  EXPECT_EQ(res.balancedPrevTop, 0b11u);
}

TEST(CompensationTest, SpuriousCarryDecrementsWhenPossible) {
  const CompFixture fix(4, 2, 2);
  // Injected spurious carry (spec=1, cout=0); low bits 10 -> -1 -> 01.
  const auto res = fix.run(true, false, 0b0110, 0b11);
  EXPECT_TRUE(res.fault);
  EXPECT_TRUE(res.corrected);
  EXPECT_EQ(res.correctedSum, 0b0101u);
  EXPECT_EQ(res.balancedPrevTop, 0b11u);
}

TEST(CompensationTest, SpuriousCarryBalancesTowardsZero) {
  const CompFixture fix(4, 2, 2);
  // low bits 00: -1 would borrow out of the group -> force prev MSBs to 0.
  const auto res = fix.run(true, false, 0b0100, 0b11);
  EXPECT_TRUE(res.fault);
  EXPECT_FALSE(res.corrected);
  EXPECT_EQ(res.correctedSum, 0b0100u);
  EXPECT_EQ(res.balancedPrevTop, 0b00u);
}

TEST(CompensationTest, NoCorrectionConfigAlwaysBalancesOnFault) {
  const CompFixture fix(4, 0, 3);
  const auto up = fix.run(false, true, 0b1111, 0b010);
  EXPECT_EQ(up.correctedSum, 0b1111u);
  EXPECT_EQ(up.balancedPrevTop, 0b111u);
  const auto down = fix.run(true, false, 0b0000, 0b101);
  EXPECT_EQ(down.balancedPrevTop, 0b000u);
}

TEST(CompensationTest, ExhaustiveAgainstBehavioralRule) {
  // Cross-check the gate-level COMP against a direct statement of the
  // compensation rule for every (spec, cout, sum, prev) combination.
  for (const int c : {0, 1, 2}) {
    const CompFixture fix(3, c, 2);
    for (int spec = 0; spec <= 1; ++spec) {
      for (int cout = 0; cout <= 1; ++cout) {
        for (std::uint64_t sum = 0; sum < 8; ++sum) {
          for (std::uint64_t prev = 0; prev < 4; ++prev) {
            const auto res = fix.run(spec != 0, cout != 0, sum, prev);
            std::uint64_t expSum = sum;
            std::uint64_t expPrev = prev;
            const int err = cout - spec;
            const std::uint64_t lowMask = (1ull << c) - 1;
            if (err > 0) {
              if (c > 0 && (sum & lowMask) != lowMask) {
                expSum = sum + 1;
              } else {
                expPrev = 0b11;
              }
            } else if (err < 0) {
              if (c > 0 && (sum & lowMask) != 0) {
                expSum = sum - 1;
              } else {
                expPrev = 0b00;
              }
            }
            EXPECT_EQ(res.correctedSum, expSum)
                << "c=" << c << " spec=" << spec << " cout=" << cout
                << " sum=" << sum;
            EXPECT_EQ(res.balancedPrevTop, expPrev)
                << "c=" << c << " spec=" << spec << " cout=" << cout
                << " sum=" << sum << " prev=" << prev;
          }
        }
      }
    }
  }
}

// The repo's central structural invariant: gate-level netlist == behavioral
// model, for every paper design and every sub-adder topology.
using DesignTopo = std::tuple<IsaConfig, AdderTopology>;

class IsaEquivalenceTest : public ::testing::TestWithParam<DesignTopo> {};

TEST_P(IsaEquivalenceTest, NetlistMatchesBehavioralModel) {
  const auto& [cfg, topo] = GetParam();
  IsaBuildOptions options;
  options.subAdderTopology = topo;
  const Netlist nl = buildIsaNetlist(cfg, options);
  const Evaluator eval(nl);
  const IsaAdder behavioral(cfg);

  std::mt19937_64 rng(97);
  for (int i = 0; i < 600; ++i) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    const bool cin = (rng() & 1u) != 0;
    const auto out =
        eval.evaluateOutputs(packOperands(a, b, cin, cfg.width));
    const oisa::core::IsaSum expected = behavioral.add(a, b, cin);
    EXPECT_EQ(unpackSum(out, cfg.width), expected.sum)
        << cfg.name() << " a=" << a << " b=" << b;
    EXPECT_EQ(unpackCarryOut(out, cfg.width), expected.carryOut);
  }

  // Directed corner vectors: carry chains, saturations, alternating bits.
  const std::uint64_t mask =
      cfg.width >= 64 ? ~0ull : (1ull << cfg.width) - 1;
  const std::uint64_t corners[] = {0,
                                   1,
                                   mask,
                                   mask - 1,
                                   mask / 3,       // 0x5555...
                                   mask / 3 * 2,   // 0xaaaa...
                                   0x00ff00ffull & mask,
                                   0x0f0f0f0full & mask};
  for (const std::uint64_t a : corners) {
    for (const std::uint64_t b : corners) {
      const auto out =
          eval.evaluateOutputs(packOperands(a, b, false, cfg.width));
      EXPECT_EQ(unpackSum(out, cfg.width), behavioral.add(a, b).sum)
          << cfg.name() << " corner a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDesignsAllTopologies, IsaEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(oisa::core::paperDesigns()),
                       ::testing::Values(AdderTopology::RippleCarry,
                                         AdderTopology::CarryLookahead,
                                         AdderTopology::Sklansky,
                                         AdderTopology::KoggeStone)),
    [](const auto& info) {
      std::string name;
      for (char ch : std::get<0>(info.param).name()) {
        if (std::isalnum(static_cast<unsigned char>(ch))) name += ch;
        if (ch == ',') name += '_';
      }
      name += "_";
      for (char ch : std::string(
               oisa::circuits::topologyName(std::get<1>(info.param)))) {
        if (ch != '-') name += ch;
      }
      return name;
    });

TEST(SpeculatorTest, AssumedCarryMatchesWindowCarryExhaustively) {
  for (int s = 1; s <= 6; ++s) {
    Netlist nl;
    std::vector<NetId> a, b;
    for (int i = 0; i < s; ++i) a.push_back(nl.input("a" + std::to_string(i)));
    for (int i = 0; i < s; ++i) b.push_back(nl.input("b" + std::to_string(i)));
    nl.output("spec", buildSpeculator(nl, a, b, /*assumeCarryIn=*/true));
    const Evaluator eval(nl);
    const std::uint64_t limit = std::uint64_t{1} << s;
    for (std::uint64_t av = 0; av < limit; ++av) {
      for (std::uint64_t bv = 0; bv < limit; ++bv) {
        std::vector<std::uint8_t> in;
        for (int i = 0; i < s; ++i) {
          in.push_back(static_cast<std::uint8_t>((av >> i) & 1u));
        }
        for (int i = 0; i < s; ++i) {
          in.push_back(static_cast<std::uint8_t>((bv >> i) & 1u));
        }
        const bool expected = ((av + bv + 1) >> s) & 1u;
        EXPECT_EQ(eval.evaluateOutputs(in)[0] != 0, expected)
            << "s=" << s << " a=" << av << " b=" << bv;
      }
    }
  }
}

class SpeculateHighEquivalenceTest
    : public ::testing::TestWithParam<IsaConfig> {};

TEST_P(SpeculateHighEquivalenceTest, NetlistMatchesBehavioralModel) {
  IsaConfig cfg = GetParam();
  cfg.speculateHigh = true;
  const Netlist nl = buildIsaNetlist(cfg);
  const Evaluator eval(nl);
  const IsaAdder behavioral(cfg);
  std::mt19937_64 rng(131);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    const auto out = eval.evaluateOutputs(packOperands(a, b, false, cfg.width));
    const oisa::core::IsaSum expected = behavioral.add(a, b, false);
    EXPECT_EQ(unpackSum(out, cfg.width), expected.sum)
        << cfg.name() << " a=" << a << " b=" << b;
    EXPECT_EQ(unpackCarryOut(out, cfg.width), expected.carryOut);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DualPolarity, SpeculateHighEquivalenceTest,
    ::testing::Values(oisa::core::makeIsa(8, 0, 0, 0),
                      oisa::core::makeIsa(8, 0, 1, 4),
                      oisa::core::makeIsa(8, 2, 0, 4),
                      oisa::core::makeIsa(16, 2, 1, 6),
                      oisa::core::makeIsa(16, 7, 0, 8)),
    [](const auto& info) {
      std::string name = "sh";
      for (char ch : info.param.name()) {
        if (std::isalnum(static_cast<unsigned char>(ch))) name += ch;
        if (ch == ',') name += '_';
      }
      return name;
    });

TEST(IsaNetlistTest, PortConventionIsStable) {
  const Netlist nl = buildIsaNetlist(oisa::core::makeIsa(8, 2, 1, 4));
  EXPECT_EQ(nl.primaryInputs().size(), 65u);  // 32 + 32 + cin
  EXPECT_EQ(nl.primaryOutputs().size(), 33u); // 32 + cout
  EXPECT_EQ(nl.net(nl.primaryInputs()[0]).name, "a0");
  EXPECT_EQ(nl.net(nl.primaryInputs()[32]).name, "b0");
  EXPECT_EQ(nl.net(nl.primaryInputs()[64]).name, "cin");
  EXPECT_EQ(nl.outputName(0), "s0");
  EXPECT_EQ(nl.outputName(32), "cout");
}

TEST(IsaNetlistTest, PackUnpackRoundTrip) {
  const auto in = packOperands(0xdeadbeef, 0x12345678, true, 32);
  ASSERT_EQ(in.size(), 65u);
  EXPECT_EQ(in[0], 1u);   // bit 0 of 0xdeadbeef
  EXPECT_EQ(in[64], 1u);  // cin
  std::vector<std::uint8_t> out(33, 0);
  out[0] = 1;
  out[31] = 1;
  out[32] = 1;
  EXPECT_EQ(unpackSum(out, 32), 0x80000001u);
  EXPECT_TRUE(unpackCarryOut(out, 32));
}

TEST(IsaNetlistTest, UnpackRejectsShortVectors) {
  const std::vector<std::uint8_t> tooShort(10, 0);
  EXPECT_THROW((void)unpackSum(tooShort, 32), std::invalid_argument);
  EXPECT_THROW((void)unpackCarryOut(tooShort, 32), std::invalid_argument);
}

}  // namespace
