// Event-driven timed simulation tests: settled equivalence with zero-delay
// evaluation, sampling semantics at short periods, glitch propagation, and
// history dependence of overclocked sampling.
#include <gtest/gtest.h>

#include <random>

#include "circuits/isa_netlist.h"
#include "core/isa_adder.h"
#include "netlist/evaluator.h"
#include "timing/cell_library.h"
#include "timing/event_sim.h"
#include "timing/sta.h"

namespace {

using oisa::circuits::packOperands;
using oisa::circuits::unpackSum;
using oisa::netlist::Evaluator;
using oisa::netlist::GateKind;
using oisa::netlist::Netlist;
using oisa::netlist::NetId;
using oisa::timing::CellLibrary;
using oisa::timing::ClockedSampler;
using oisa::timing::DelayAnnotation;
using oisa::timing::TimedSimulator;

CellLibrary unitLibrary() {
  CellLibrary lib;
  for (const GateKind kind : oisa::netlist::allGateKinds()) {
    lib.cell(kind) = oisa::timing::CellTiming{1.0, 0.0, 1.0};
  }
  lib.cell(GateKind::Const0) = oisa::timing::CellTiming{0.0, 0.0, 0.0};
  lib.cell(GateKind::Const1) = oisa::timing::CellTiming{0.0, 0.0, 0.0};
  return lib;
}

TEST(TimedSimulatorTest, SettleMatchesZeroDelayEvaluation) {
  const auto cfg = oisa::core::makeIsa(8, 2, 1, 4);
  const Netlist nl = oisa::circuits::buildIsaNetlist(cfg);
  const CellLibrary lib = CellLibrary::generic65();
  const DelayAnnotation delays(nl, lib);
  TimedSimulator sim(nl, delays);
  const Evaluator eval(nl);

  std::mt19937_64 rng(17);
  for (int i = 0; i < 50; ++i) {
    const auto in = packOperands(rng(), rng(), rng() & 1, 32);
    sim.applyInputs(in);
    (void)sim.settle();
    EXPECT_EQ(sim.sampleOutputs(), eval.evaluateOutputs(in));
  }
}

TEST(TimedSimulatorTest, SettleTimeNeverExceedsStaCriticalDelay) {
  const auto cfg = oisa::core::makeExact(32);
  const Netlist nl = oisa::circuits::buildIsaNetlist(cfg);
  const CellLibrary lib = CellLibrary::generic65();
  const DelayAnnotation delays(nl, lib);
  const double critical = criticalDelayNs(nl, delays);
  TimedSimulator sim(nl, delays);

  std::mt19937_64 rng(19);
  for (int i = 0; i < 30; ++i) {
    const double before = sim.nowNs();
    sim.applyInputs(packOperands(rng(), rng(), false, 32));
    const double settled = sim.settle();
    EXPECT_LE(settled - before, critical + 1e-9);
  }
}

TEST(TimedSimulatorTest, OutputHoldsOldValueWhenPathTooSlow) {
  // Three-inverter chain, 1 ns per stage: sampling at 2 ns must return the
  // previous output value; at 4 ns the new one.
  Netlist nl;
  NetId n = nl.input("a");
  for (int i = 0; i < 3; ++i) n = nl.gate1(GateKind::Inv, n);
  nl.output("y", n);
  const DelayAnnotation delays(nl, unitLibrary());

  // Settled at a=0: y = !!!0 = 1.
  TimedSimulator sim(nl, delays);
  const std::vector<std::uint8_t> zero{0}, one{1};
  sim.applyInputs(zero);
  (void)sim.settle();
  ASSERT_EQ(sim.sampleOutputs()[0], 1);

  sim.applyInputs(one);
  sim.advance(2.0);
  EXPECT_EQ(sim.sampleOutputs()[0], 1) << "not settled yet: holds old value";
  sim.advance(2.0);
  EXPECT_EQ(sim.sampleOutputs()[0], 0) << "settled after 3 ns total";
}

TEST(TimedSimulatorTest, EventExactlyAtEdgeIsNotLatched) {
  // One inverter, 1 ns: an output event at exactly t=1 must not be visible
  // when sampling at t=1 (strictly-before semantics, zero setup time).
  Netlist nl;
  nl.output("y", nl.gate1(GateKind::Inv, nl.input("a")));
  const DelayAnnotation delays(nl, unitLibrary());
  TimedSimulator sim(nl, delays);
  const std::vector<std::uint8_t> zero{0}, one{1};
  sim.applyInputs(zero);
  (void)sim.settle();
  ASSERT_EQ(sim.sampleOutputs()[0], 1);
  sim.applyInputs(one);
  sim.advance(1.0);
  EXPECT_EQ(sim.sampleOutputs()[0], 1);
  sim.advance(1e-6);
  EXPECT_EQ(sim.sampleOutputs()[0], 0);
}

TEST(TimedSimulatorTest, GlitchPropagatesThroughUnbalancedXor) {
  // y = a XOR buf(a): statically 0, but a rising 'a' makes the XOR see
  // (new a, old buf) for 1 ns -> a 1-glitch between t=1 and t=2.
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId slow = nl.gate1(GateKind::Buf, a);
  nl.output("y", nl.gate2(GateKind::Xor2, a, slow));
  const DelayAnnotation delays(nl, unitLibrary());
  TimedSimulator sim(nl, delays);
  const std::vector<std::uint8_t> zero{0}, one{1};
  sim.applyInputs(zero);
  (void)sim.settle();
  ASSERT_EQ(sim.sampleOutputs()[0], 0);

  sim.applyInputs(one);
  sim.advance(1.5);  // inside the glitch window
  EXPECT_EQ(sim.sampleOutputs()[0], 1);
  (void)sim.settle();
  EXPECT_EQ(sim.sampleOutputs()[0], 0);
}

TEST(ClockedSamplerTest, GenerousPeriodReproducesGoldenOutputs) {
  const auto cfg = oisa::core::makeIsa(16, 2, 1, 6);
  const Netlist nl = oisa::circuits::buildIsaNetlist(cfg);
  const CellLibrary lib = CellLibrary::generic65();
  const DelayAnnotation delays(nl, lib);
  ClockedSampler sampler(nl, delays, 10.0);  // effectively unclocked
  const oisa::core::IsaAdder behavioral(cfg);

  std::mt19937_64 rng(23);
  sampler.initialize(packOperands(rng(), rng(), false, 32));
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    const auto out = sampler.step(packOperands(a, b, false, 32));
    EXPECT_EQ(unpackSum(out, 32), behavioral.add(a, b).sum);
  }
}

TEST(ClockedSamplerTest, AggressiveOverclockProducesTimingErrors) {
  const auto cfg = oisa::core::makeExact(32);
  const Netlist nl = oisa::circuits::buildIsaNetlist(cfg);
  const CellLibrary lib = CellLibrary::generic65();
  const DelayAnnotation delays(nl, lib);
  const double critical = criticalDelayNs(nl, delays);
  ClockedSampler sampler(nl, delays, critical * 0.6);  // savage overclock
  const oisa::core::IsaAdder behavioral(cfg);

  std::mt19937_64 rng(29);
  sampler.initialize(packOperands(rng(), rng(), false, 32));
  int errors = 0;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    const auto out = sampler.step(packOperands(a, b, false, 32));
    if (unpackSum(out, 32) != behavioral.add(a, b).sum) ++errors;
  }
  EXPECT_GT(errors, 0);
}

TEST(ClockedSamplerTest, TimingErrorsDependOnPreviousInput) {
  // Same current input, different previous input: an overclocked sample may
  // differ — the core reason the predictor needs x[t-1] features. Verify
  // the simulator can produce both behaviors for some input pair.
  Netlist nl;
  NetId n = nl.input("a");
  for (int i = 0; i < 4; ++i) n = nl.gate1(GateKind::Buf, n);
  nl.output("y", n);
  const DelayAnnotation delays(nl, unitLibrary());

  auto sampleAfter = [&](std::uint8_t prev, std::uint8_t cur) {
    ClockedSampler sampler(nl, delays, 2.0);  // 4 ns path, 2 ns clock
    const std::vector<std::uint8_t> p{prev}, c{cur};
    sampler.initialize(p);
    return sampler.step(c)[0];
  };
  // prev == cur: output already settled, stays correct.
  EXPECT_EQ(sampleAfter(1, 1), 1);
  // prev != cur: change cannot traverse 4 ns of buffers in 2 ns.
  EXPECT_EQ(sampleAfter(0, 1), 0);
}

TEST(ClockedSamplerTest, RejectsNonPositivePeriod) {
  Netlist nl;
  nl.output("y", nl.gate1(GateKind::Buf, nl.input("a")));
  const DelayAnnotation delays(nl, unitLibrary());
  EXPECT_THROW(ClockedSampler(nl, delays, 0.0), std::invalid_argument);
}

TEST(TimedSimulatorTest, RejectsMismatchedAnnotation) {
  Netlist a, b;
  a.output("y", a.gate1(GateKind::Buf, a.input("x")));
  b.output("y", b.gate1(GateKind::Inv, b.gate1(GateKind::Buf, b.input("x"))));
  const CellLibrary lib = unitLibrary();
  const DelayAnnotation delaysB(b, lib);
  EXPECT_THROW(TimedSimulator(a, delaysB), std::invalid_argument);
}

}  // namespace
