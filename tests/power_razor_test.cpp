// Power-estimation and Razor-detection tests.
#include <gtest/gtest.h>

#include <random>

#include "circuits/synthesis.h"
#include "core/isa_adder.h"
#include "timing/power.h"
#include "timing/razor.h"
#include "timing/sta.h"

namespace {

using oisa::circuits::packOperands;
using oisa::circuits::SynthesisOptions;
using oisa::circuits::synthesize;
using oisa::timing::CellLibrary;
using oisa::timing::measurePower;
using oisa::timing::PowerLibrary;
using oisa::timing::RazorSampler;

std::vector<std::vector<std::uint8_t>> randomStimuli(int cycles,
                                                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::vector<std::uint8_t>> stimuli;
  for (int i = 0; i < cycles; ++i) {
    stimuli.push_back(packOperands(rng(), rng(), false, 32));
  }
  return stimuli;
}

TEST(PowerTest, IdleCircuitBurnsOnlyLeakage) {
  const auto design = synthesize(oisa::core::makeIsa(8, 0, 0, 4),
                                 CellLibrary::generic65(),
                                 SynthesisOptions{});
  const PowerLibrary power = PowerLibrary::generic65();
  // Constant stimulus: after the settled reset nothing toggles.
  std::vector<std::vector<std::uint8_t>> stimuli(
      5, packOperands(0x1234, 0x5678, false, 32));
  const auto report = measurePower(design.netlist, design.delays, power,
                                   0.3, stimuli);
  EXPECT_EQ(report.toggles, 0u);
  EXPECT_EQ(report.dynamicPowerUw, 0.0);
  EXPECT_GT(report.leakagePowerUw, 0.0);
  EXPECT_DOUBLE_EQ(report.totalPowerUw, report.leakagePowerUw);
}

TEST(PowerTest, ActivityScalesDynamicPower) {
  const auto design = synthesize(oisa::core::makeIsa(8, 0, 0, 4),
                                 CellLibrary::generic65(),
                                 SynthesisOptions{});
  const PowerLibrary power = PowerLibrary::generic65();
  const auto active = measurePower(design.netlist, design.delays, power,
                                   0.3, randomStimuli(60, 3));
  EXPECT_GT(active.toggles, 0u);
  EXPECT_GT(active.dynamicPowerUw, active.leakagePowerUw * 0.1);
  EXPECT_GT(active.meanTogglesPerCycle, 10.0);
  EXPECT_NEAR(active.energyPerOpFj,
              active.dynamicPowerUw * 0.3, 1e-9);
}

TEST(PowerTest, SmallerDesignUsesLessEnergyThanExact) {
  // The paper's energy-efficiency claim: speculative adders beat the exact
  // one on both area (leakage) and switched capacitance.
  const CellLibrary lib = CellLibrary::generic65();
  const PowerLibrary power = PowerLibrary::generic65();
  const auto stimuli = randomStimuli(80, 7);
  const auto isa =
      synthesize(oisa::core::makeIsa(8, 0, 0, 4), lib, SynthesisOptions{});
  const auto exact =
      synthesize(oisa::core::makeExact(32), lib, SynthesisOptions{});
  const auto isaReport =
      measurePower(isa.netlist, isa.delays, power, 0.3, stimuli);
  const auto exactReport =
      measurePower(exact.netlist, exact.delays, power, 0.3, stimuli);
  EXPECT_LT(isaReport.leakagePowerUw, exactReport.leakagePowerUw);
  EXPECT_LT(isaReport.energyPerOpFj, exactReport.energyPerOpFj);
}

TEST(PowerTest, RejectsDegenerateStimuli) {
  const auto design = synthesize(oisa::core::makeIsa(8, 0, 0, 0),
                                 CellLibrary::generic65(),
                                 SynthesisOptions{});
  const std::vector<std::vector<std::uint8_t>> one(
      1, packOperands(0, 0, false, 32));
  EXPECT_THROW((void)measurePower(design.netlist, design.delays,
                                  PowerLibrary::generic65(), 0.3, one),
               std::invalid_argument);
}

TEST(RazorTest, SafeClockNeverDetects) {
  const auto design = synthesize(oisa::core::makeIsa(8, 0, 0, 4),
                                 CellLibrary::generic65(),
                                 SynthesisOptions{});
  RazorSampler razor(design.netlist, design.delays, /*period=*/0.5,
                     /*margin=*/0.2);
  std::mt19937_64 rng(11);
  razor.initialize(packOperands(rng(), rng(), false, 32));
  for (int i = 0; i < 300; ++i) {
    const auto r = razor.step(packOperands(rng(), rng(), false, 32));
    EXPECT_FALSE(r.detected);
  }
  EXPECT_EQ(razor.detections(), 0u);
  EXPECT_DOUBLE_EQ(razor.effectiveCyclesPerOp(), 1.0);
}

TEST(RazorTest, AggressiveClockDetectsLatePaths) {
  // Clock far below the critical delay with a generous shadow margin: late
  // transitions land between the two samples and are flagged.
  const auto design = synthesize(oisa::core::makeExact(32),
                                 CellLibrary::generic65(),
                                 SynthesisOptions{});
  const double critical = design.criticalDelayNs;
  RazorSampler razor(design.netlist, design.delays, critical * 0.55,
                     critical);
  std::mt19937_64 rng(13);
  razor.initialize(packOperands(rng(), rng(), false, 32));
  int detections = 0;
  for (int i = 0; i < 400; ++i) {
    detections += razor.step(packOperands(rng(), rng(), false, 32)).detected;
  }
  EXPECT_GT(detections, 0);
  EXPECT_EQ(razor.detections(), static_cast<std::uint64_t>(detections));
  EXPECT_GT(razor.detectionRate(), 0.0);
  EXPECT_GT(razor.effectiveCyclesPerOp(), 1.0);
}

TEST(RazorTest, ShadowWithFullMarginMatchesSettledOutputs) {
  // With margin >= remaining settle time, the shadow equals the golden
  // (functional) outputs, so detection == "main sample was erroneous".
  const auto design = synthesize(oisa::core::makeIsa(16, 2, 1, 6),
                                 CellLibrary::generic65(),
                                 SynthesisOptions{});
  const oisa::core::IsaAdder behavioral(design.config);
  RazorSampler razor(design.netlist, design.delays, 0.255,
                     design.criticalDelayNs);
  std::mt19937_64 rng(17);
  razor.initialize(packOperands(rng(), rng(), false, 32));
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    const auto r = razor.step(packOperands(a, b, false, 32));
    const auto gold = behavioral.add(a, b);
    EXPECT_EQ(oisa::circuits::unpackSum(r.shadow, 32), gold.sum);
    const bool mainWrong =
        oisa::circuits::unpackSum(r.main, 32) != gold.sum ||
        oisa::circuits::unpackCarryOut(r.main, 32) != gold.carryOut;
    EXPECT_EQ(r.detected, mainWrong);
  }
}

TEST(RazorTest, ThroughputGainAccountsForReplay) {
  const auto design = synthesize(oisa::core::makeIsa(8, 0, 0, 4),
                                 CellLibrary::generic65(),
                                 SynthesisOptions{});
  RazorSampler razor(design.netlist, design.delays, 0.15, 0.3,
                     /*penalty=*/5.0);
  std::mt19937_64 rng(19);
  razor.initialize(packOperands(rng(), rng(), false, 32));
  for (int i = 0; i < 200; ++i) {
    (void)razor.step(packOperands(rng(), rng(), false, 32));
  }
  // 0.3 / 0.15 = 2x frequency, discounted by replays.
  const double gain = razor.throughputGain(0.3);
  EXPECT_LT(gain, 2.0 + 1e-9);
  EXPECT_GT(gain, 0.0);
  EXPECT_NEAR(gain, 2.0 / razor.effectiveCyclesPerOp(), 1e-12);
}

TEST(RazorTest, RejectsBadParameters) {
  const auto design = synthesize(oisa::core::makeIsa(8, 0, 0, 0),
                                 CellLibrary::generic65(),
                                 SynthesisOptions{});
  EXPECT_THROW(RazorSampler(design.netlist, design.delays, 0.0, 0.1),
               std::invalid_argument);
  EXPECT_THROW(RazorSampler(design.netlist, design.delays, 0.3, -0.1),
               std::invalid_argument);
}

}  // namespace
