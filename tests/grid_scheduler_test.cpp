// GridScheduler failure semantics: aggregation of every cell failure
// into one GridError (not first-exception-wins), per-cell retry with
// backoff, cooperative cancellation with a wall-clock deadline, and the
// documented post-error state — all at 1, 2 and 8 threads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <vector>

#include "core/fault_inject.h"
#include "core/status.h"
#include "experiments/grid_scheduler.h"

namespace {

using oisa::core::ScopedFaultPlan;
using oisa::core::Status;
using oisa::core::StatusCode;
using oisa::core::StatusError;
using oisa::experiments::CancelToken;
using oisa::experiments::GridError;
using oisa::experiments::GridScheduler;
using oisa::experiments::RunPolicy;

const unsigned kThreadCounts[] = {1, 2, 8};

TEST(GridSchedulerErrorTest, AggregatesEveryFailureNotJustTheFirst) {
  for (const unsigned threads : kThreadCounts) {
    GridScheduler pool(threads);
    // Cells 3, 7, 11 fail; all three must be reported, sorted by cell,
    // and the remaining 13 cells must still have run.
    std::atomic<int> ran{0};
    try {
      pool.run(16, [&](std::size_t cell) {
        ran.fetch_add(1);
        if (cell % 4 == 3) {
          throw StatusError(Status::ioError("cell " + std::to_string(cell) +
                                            " died"));
        }
      });
      FAIL() << "expected GridError at " << threads << " threads";
    } catch (const GridError& e) {
      ASSERT_EQ(e.failures().size(), 4u) << threads << " threads";
      std::vector<std::size_t> cells;
      for (const auto& f : e.failures()) cells.push_back(f.cell);
      EXPECT_EQ(cells, (std::vector<std::size_t>{3, 7, 11, 15}));
      for (const auto& f : e.failures()) {
        EXPECT_EQ(f.status.code(), StatusCode::IoError);
        EXPECT_EQ(f.attempts, 1u);
      }
      EXPECT_FALSE(e.cancelled());
      EXPECT_EQ(e.cellsNotRun(), 0u);
    }
    // Documented post-error state: every cell was attempted exactly once.
    EXPECT_EQ(ran.load(), 16);
  }
}

TEST(GridSchedulerErrorTest, SchedulerIsReusableAfterAGridError) {
  for (const unsigned threads : kThreadCounts) {
    GridScheduler pool(threads);
    EXPECT_THROW(
        pool.run(8, [](std::size_t cell) {
          if (cell == 2) throw std::runtime_error("boom");
        }),
        GridError);
    // The next run starts clean: no stale failures, all cells execute.
    std::atomic<int> ran{0};
    EXPECT_NO_THROW(pool.run(8, [&](std::size_t) { ran.fetch_add(1); }));
    EXPECT_EQ(ran.load(), 8);
  }
}

TEST(GridSchedulerErrorTest, PlainExceptionsBecomeInternalStatus) {
  GridScheduler pool(1);
  try {
    pool.run(2, [](std::size_t) { throw std::runtime_error("plain"); });
    FAIL();
  } catch (const GridError& e) {
    ASSERT_EQ(e.failures().size(), 2u);
    EXPECT_EQ(e.failures()[0].status.code(), StatusCode::Internal);
    EXPECT_NE(e.failures()[0].status.message().find("plain"),
              std::string::npos);
  }
}

TEST(GridSchedulerRetryTest, TransientFailureSucceedsOnRetry) {
  // grid.cell:1 — exactly the first hit dies. With 2 attempts the retry
  // recomputes the same cell successfully.
  ScopedFaultPlan plan("grid.cell:1");
  GridScheduler pool(1);
  RunPolicy policy;
  policy.maxAttempts = 2;
  std::atomic<int> completed{0};
  pool.run(
      4,
      [&](std::size_t) {
        oisa::core::fault_inject::maybeThrow(
            oisa::core::fault_inject::kGridCell, StatusCode::IoError);
        completed.fetch_add(1);
      },
      policy);
  EXPECT_EQ(completed.load(), 4);
  // First attempt of the first cell + its retry + three clean cells.
  EXPECT_EQ(oisa::core::fault_inject::hitCount("grid.cell"), 5u);
}

TEST(GridSchedulerRetryTest, PermanentFailureExhaustsAttemptsThenAggregates) {
  ScopedFaultPlan plan("grid.cell:1+");  // every hit fails
  GridScheduler pool(1);
  RunPolicy policy;
  policy.maxAttempts = 3;
  try {
    pool.run(2, [&](std::size_t) {
      oisa::core::fault_inject::maybeThrow(
          oisa::core::fault_inject::kGridCell, StatusCode::IoError);
    });
    FAIL() << "expected GridError";
  } catch (const GridError& e) {
    // Default policy (no retry) on the 2-arg overload: attempts == 1.
    ASSERT_EQ(e.failures().size(), 2u);
    EXPECT_EQ(e.failures()[0].attempts, 1u);
  }
  try {
    pool.run(
        2,
        [&](std::size_t) {
          oisa::core::fault_inject::maybeThrow(
              oisa::core::fault_inject::kGridCell, StatusCode::IoError);
        },
        policy);
    FAIL() << "expected GridError";
  } catch (const GridError& e) {
    ASSERT_EQ(e.failures().size(), 2u);
    for (const auto& f : e.failures()) EXPECT_EQ(f.attempts, 3u);
  }
}

TEST(GridSchedulerRetryTest, InvalidInputIsNeverRetried) {
  GridScheduler pool(1);
  RunPolicy policy;
  policy.maxAttempts = 5;
  std::atomic<int> attempts{0};
  try {
    pool.run(
        1,
        [&](std::size_t) {
          attempts.fetch_add(1);
          throw StatusError(Status::invalidInput("caller bug"));
        },
        policy);
    FAIL();
  } catch (const GridError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_EQ(e.failures()[0].status.code(), StatusCode::InvalidInput);
    EXPECT_EQ(e.failures()[0].attempts, 1u);
  }
  EXPECT_EQ(attempts.load(), 1);
}

TEST(GridSchedulerCancelTest, PreCancelledTokenRunsNothing) {
  for (const unsigned threads : kThreadCounts) {
    GridScheduler pool(threads);
    CancelToken cancel;
    cancel.requestCancel();
    RunPolicy policy;
    policy.cancel = &cancel;
    std::atomic<int> ran{0};
    try {
      pool.run(64, [&](std::size_t) { ran.fetch_add(1); }, policy);
      FAIL() << "expected GridError at " << threads << " threads";
    } catch (const GridError& e) {
      EXPECT_TRUE(e.cancelled());
      EXPECT_TRUE(e.failures().empty());
      EXPECT_EQ(e.cellsNotRun(), 64u);
    }
    EXPECT_EQ(ran.load(), 0) << threads << " threads";
  }
}

TEST(GridSchedulerCancelTest, MidRunCancelStopsClaimsPromptly) {
  // Single worker for determinism: cell 2 cancels, cells 3..9 must never
  // be claimed (the token is checked before every claim).
  GridScheduler pool(1);
  CancelToken cancel;
  RunPolicy policy;
  policy.cancel = &cancel;
  std::set<std::size_t> ran;
  try {
    pool.run(
        10,
        [&](std::size_t cell) {
          ran.insert(cell);
          if (cell == 2) cancel.requestCancel();
        },
        policy);
    FAIL() << "expected GridError";
  } catch (const GridError& e) {
    EXPECT_TRUE(e.cancelled());
    EXPECT_EQ(e.cellsNotRun(), 7u);
  }
  EXPECT_EQ(ran, (std::set<std::size_t>{0, 1, 2}));
}

TEST(GridSchedulerCancelTest, ExpiredDeadlineCancels) {
  for (const unsigned threads : kThreadCounts) {
    GridScheduler pool(threads);
    CancelToken cancel;
    cancel.setTimeout(std::chrono::nanoseconds{0});  // already expired
    RunPolicy policy;
    policy.cancel = &cancel;
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.run(32, [&](std::size_t) { ran.fetch_add(1); }, policy),
        GridError);
    EXPECT_EQ(ran.load(), 0) << threads << " threads";
    EXPECT_TRUE(cancel.cancelled());
  }
}

TEST(GridSchedulerCancelTest, CancellationLatches) {
  CancelToken cancel;
  EXPECT_FALSE(cancel.cancelled());
  cancel.setTimeout(std::chrono::hours{24});
  EXPECT_FALSE(cancel.cancelled());
  cancel.requestCancel();
  EXPECT_TRUE(cancel.cancelled());
  EXPECT_TRUE(cancel.cancelled());  // stays cancelled
}

}  // namespace
