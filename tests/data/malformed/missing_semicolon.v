// unterminated statement: assign without its semicolon
module semi (
  input  wire a,
  input  wire b,
  output wire y
);

  wire n1;
  assign n1 = a & b
  assign y = n1;
endmodule
