// unterminated module: endmodule never appears
module broken (
  input  wire a,
  output wire y
);

  wire n1;
  assign n1 = ~a;
  assign y = n1;
