// the same net assigned twice
module dup (
  input  wire a,
  input  wire b,
  output wire y
);

  wire n1;
  assign n1 = a & b;
  assign n1 = a | b;
  assign y = n1;
endmodule
