// self-referential assign: y depends on itself through n1
module cyclic (
  input  wire a,
  output wire y
);

  wire n1;
  assign n1 = y & a;
  assign y = n1;
endmodule
