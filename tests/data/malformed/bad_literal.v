// multi-bit literal outside the structural subset
module lit (
  input  wire a,
  output wire y
);

  wire n1;
  assign n1 = a & 4'hF;
  assign y = n1;
endmodule
