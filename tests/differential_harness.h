// Shared differential-testing harness.
//
// One home for the seeded generators the engine test suites previously
// carried as private copies (random combinational DAGs, random pattern
// words, correlated random datasets, the unit-delay cell library, the
// ISCAS-85 c17 benchmark) plus the lane bit-exactness helpers that prove
// a wide dispatched engine equivalent to the 64-lane reference by slicing
// its blocks into 64-bit sub-words.
//
// Every generator takes an explicit seed (or a caller-owned seeded rng)
// and every differential entry point should sit under OISA_TRACE_SEED so
// a failure report names the exact seed that reproduces it.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "fault/fault_model.h"
#include "fault/ppsfp_dispatch.h"
#include "ml/dataset.h"
#include "netlist/compiled_netlist.h"
#include "netlist/gate.h"
#include "netlist/lane_width.h"
#include "netlist/netlist.h"
#include "timing/cell_library.h"
#include "timing/delay_annotation.h"
#include "timing/lane_dispatch.h"

namespace oisa::testing {

/// Failure-reproduction message for OISA_TRACE_SEED.
inline std::string seedMessage(std::uint64_t seed) {
  return "differential_harness seed = " + std::to_string(seed) +
         " (re-run the generators with this seed to reproduce)";
}

/// ISCAS-85 c17 (NAND-only toy benchmark), in ISCAS bench format.
inline constexpr const char* kC17 = R"(
# ISCAS-85 c17 (NAND-only toy benchmark)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

/// Unit-delay library: every cell 1 ns / zero slope, constants free.
inline timing::CellLibrary unitLibrary() {
  timing::CellLibrary lib;
  for (const netlist::GateKind kind : netlist::allGateKinds()) {
    lib.cell(kind) = timing::CellTiming{1.0, 0.0, 1.0};
  }
  lib.cell(netlist::GateKind::Const0) = timing::CellTiming{0.0, 0.0, 0.0};
  lib.cell(netlist::GateKind::Const1) = timing::CellTiming{0.0, 0.0, 0.0};
  return lib;
}

/// Random combinational DAG (acyclic by construction): gates draw their
/// inputs from everything built so far, outputs tap random gate nets.
/// Identical construction (and rng consumption) to the generators the
/// engine suites used before this header existed.
inline netlist::Netlist randomNetlist(std::mt19937_64& rng, int inputCount,
                                      int gateCount, int outputCount = 8) {
  netlist::Netlist nl("rand");
  std::vector<netlist::NetId> nets;
  for (int i = 0; i < inputCount; ++i) {
    nets.push_back(nl.input("i" + std::to_string(i)));
  }
  std::vector<netlist::GateKind> kinds;
  for (const netlist::GateKind kind : netlist::allGateKinds()) {
    if (netlist::gateArity(kind) > 0) kinds.push_back(kind);
  }
  std::vector<netlist::NetId> gateOuts;
  for (int g = 0; g < gateCount; ++g) {
    const netlist::GateKind kind = kinds[rng() % kinds.size()];
    std::vector<netlist::NetId> ins;
    for (int a = 0; a < netlist::gateArity(kind); ++a) {
      ins.push_back(nets[rng() % nets.size()]);
    }
    const netlist::NetId out = nl.gate(kind, ins);
    nets.push_back(out);
    gateOuts.push_back(out);
  }
  for (int o = 0; o < outputCount; ++o) {
    nl.output("o" + std::to_string(o), gateOuts[rng() % gateOuts.size()]);
  }
  nl.validate();
  return nl;
}

/// `count` fresh 64-bit pattern words.
inline std::vector<std::uint64_t> randomWords(std::mt19937_64& rng,
                                              std::size_t count) {
  std::vector<std::uint64_t> words(count);
  for (auto& w : words) w = rng();
  return words;
}

/// Random binary dataset with correlated labels (majority of the first
/// three features, with 10% noise) so trees grow real structure instead
/// of collapsing to a leaf.
inline ml::Dataset randomDataset(std::size_t rows, std::size_t features,
                                 std::uint64_t seed) {
  ml::Dataset data(features);
  std::mt19937_64 rng(seed);
  std::vector<std::uint8_t> row(features);
  for (std::size_t i = 0; i < rows; ++i) {
    for (auto& v : row) v = static_cast<std::uint8_t>(rng() & 1);
    bool label = row[0] + row[1 % features] + row[2 % features] >= 2;
    if ((rng() % 100) < 10) label = !label;
    data.addRow(row, label);
  }
  return data;
}

// ---------------------------------------------------------------------------
// Lane bit-exactness: a W = 64K lane engine is correct iff slicing each of
// its blocks into K 64-bit sub-words reproduces K independent runs of the
// 64-lane reference on the same stimuli. The helpers below assert exactly
// that, sub-word by sub-word, over caller-seeded random stimuli.
// ---------------------------------------------------------------------------

/// Functional engine: every net word and every output word of `wide`
/// must slice to the reference's planes for the same per-sub-block
/// stimuli.
inline void expectLaneBitExact(netlist::AnyBatchEvaluator& reference,
                               netlist::AnyBatchEvaluator& wide,
                               std::mt19937_64& rng, int rounds = 4) {
  ASSERT_EQ(reference.wordsPerNet(), 1u)
      << "pass the 64-lane reference first";
  const std::size_t kW = wide.wordsPerNet();
  const std::size_t inputs = wide.compiled()->inputNets().size();
  const std::size_t outputs = wide.compiled()->outputNets().size();
  const std::size_t nets = wide.compiled()->netCount();

  std::vector<std::uint64_t> wideIn(inputs * kW);
  std::vector<std::uint64_t> wideVals;
  std::vector<std::uint64_t> wideOut(outputs * kW);
  std::vector<std::uint64_t> refIn(inputs);
  std::vector<std::uint64_t> refVals;
  std::vector<std::uint64_t> refOut(outputs);
  for (int round = 0; round < rounds; ++round) {
    for (auto& w : wideIn) w = rng();
    wide.evaluateInto(wideIn, wideVals);
    wide.evaluateOutputsInto(wideIn, wideOut);
    for (std::size_t j = 0; j < kW; ++j) {
      for (std::size_t i = 0; i < inputs; ++i) refIn[i] = wideIn[i * kW + j];
      reference.evaluateInto(refIn, refVals);
      reference.evaluateOutputsInto(refIn, refOut);
      for (std::size_t n = 0; n < nets; ++n) {
        ASSERT_EQ(wideVals[n * kW + j], refVals[n])
            << "round " << round << " sub-word " << j << " net " << n;
      }
      for (std::size_t o = 0; o < outputs; ++o) {
        ASSERT_EQ(wideOut[o * kW + j], refOut[o])
            << "round " << round << " sub-word " << j << " output " << o;
      }
    }
  }
}

/// Timed engine: builds a `wideSel` clocked sampler and, per 64-lane
/// sub-block, a fresh 64-lane reference sampler, drives both through the
/// same settle + `cycles` overclocked cycles of random stimulus, and
/// asserts every sampled output word and every final net word agree.
/// `prepare` (optional) is applied to each simulator before its run —
/// e.g. a stuck-at injection, to prove forceNet clamps slice exactly.
inline void expectLaneBitExact(
    const std::shared_ptr<const netlist::CompiledNetlist>& compiled,
    const timing::DelayAnnotation& delays, double periodNs,
    netlist::LaneSelection wideSel, int cycles, std::mt19937_64& rng,
    const std::function<void(timing::AnyLaneSimulator&)>& prepare = {}) {
  const auto wide = timing::makeLaneSampler(compiled, delays, periodNs,
                                            wideSel);
  if (prepare) prepare(wide->simulator());
  const std::size_t kW = wide->wordsPerNet();
  const std::size_t inputs = compiled->inputNets().size();
  const std::size_t outputs = compiled->outputNets().size();
  const std::size_t nets = compiled->netCount();

  // Materialize the stimulus plane: step 0 is the settled reset vector.
  std::vector<std::vector<std::uint64_t>> stimuli(
      static_cast<std::size_t>(cycles) + 1);
  for (auto& step : stimuli) step = randomWords(rng, inputs * kW);

  std::vector<std::vector<std::uint64_t>> wideOut(
      static_cast<std::size_t>(cycles));
  wide->initialize(stimuli[0]);
  for (int t = 0; t < cycles; ++t) {
    wide->stepInto(stimuli[static_cast<std::size_t>(t) + 1],
                   wideOut[static_cast<std::size_t>(t)]);
  }
  const auto wideNets = wide->simulator().netWords();

  std::vector<std::uint64_t> refIn(inputs);
  std::vector<std::uint64_t> refOut;
  for (std::size_t j = 0; j < kW; ++j) {
    const auto ref = timing::makeLaneSampler(
        compiled, delays, periodNs,
        netlist::LaneSelection{64, netlist::LaneArch::Portable});
    if (prepare) prepare(ref->simulator());
    for (std::size_t i = 0; i < inputs; ++i) {
      refIn[i] = stimuli[0][i * kW + j];
    }
    ref->initialize(refIn);
    for (int t = 0; t < cycles; ++t) {
      const auto& step = stimuli[static_cast<std::size_t>(t) + 1];
      for (std::size_t i = 0; i < inputs; ++i) refIn[i] = step[i * kW + j];
      ref->stepInto(refIn, refOut);
      for (std::size_t o = 0; o < outputs; ++o) {
        ASSERT_EQ(wideOut[static_cast<std::size_t>(t)][o * kW + j],
                  refOut[o])
            << "cycle " << t << " sub-word " << j << " output " << o;
      }
    }
    const auto refNets = ref->simulator().netWords();
    for (std::size_t n = 0; n < nets; ++n) {
      ASSERT_EQ(wideNets[n * kW + j], refNets[n])
          << "final state sub-word " << j << " net " << n;
    }
  }
}

/// PPSFP engine: detection words of `wide` must slice to the reference's
/// detection word for every fault, including partially filled blocks
/// (lanes past the pattern count must stay silent at any width).
inline void expectLaneBitExact(fault::AnyPpsfpEngine& reference,
                               fault::AnyPpsfpEngine& wide,
                               std::span<const fault::Fault> faults,
                               std::mt19937_64& rng, int rounds = 2) {
  ASSERT_EQ(reference.wordsPerNet(), 1u)
      << "pass the 64-lane reference first";
  const std::size_t kW = wide.wordsPerNet();
  const std::size_t inputs = wide.compiled()->inputNets().size();

  std::vector<std::uint64_t> refWords(inputs);
  std::vector<std::uint64_t> det(kW);
  std::vector<std::uint64_t> refDet(1);
  for (int round = 0; round < rounds; ++round) {
    const auto wideWords = randomWords(rng, inputs * kW);
    // Full block first, then a partial one (tail sub-words masked).
    const std::size_t count =
        round % 2 == 0 ? wide.lanes()
                       : 1 + static_cast<std::size_t>(
                                 rng() % (wide.lanes() - 1));
    wide.loadPatterns(wideWords, count);
    std::vector<std::vector<std::uint64_t>> wideDet(faults.size());
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      wide.detectLanesInto(faults[fi], det);
      wideDet[fi] = det;
    }
    for (std::size_t j = 0; j < kW; ++j) {
      const std::size_t lo = 64 * j;
      const std::size_t refCount =
          count > lo ? std::min<std::size_t>(count - lo, 64) : 0;
      if (refCount == 0) {
        for (std::size_t fi = 0; fi < faults.size(); ++fi) {
          ASSERT_EQ(wideDet[fi][j], 0u)
              << "round " << round << " empty sub-word " << j << " fault "
              << fi;
        }
        continue;
      }
      for (std::size_t i = 0; i < inputs; ++i) {
        refWords[i] = wideWords[i * kW + j];
      }
      reference.loadPatterns(refWords, refCount);
      for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        reference.detectLanesInto(faults[fi], refDet);
        ASSERT_EQ(wideDet[fi][j], refDet[0])
            << "round " << round << " sub-word " << j << " fault " << fi;
      }
    }
  }
}

}  // namespace oisa::testing

/// Gtest trace naming the harness seed a failing differential run
/// reproduces with.
#define OISA_TRACE_SEED(seed) SCOPED_TRACE(::oisa::testing::seedMessage(seed))
