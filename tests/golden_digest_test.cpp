// Golden-digest regression tests (the ROADMAP's `.ans.sha` scheme): the
// fig7/fig8 prediction rows, fig9 error-combination rows, fault-coverage
// scan rows and a c17 random-coverage campaign are serialized to a
// canonical text form and SHA-256-digested against checked-in goldens.
// Every number is printed in hexfloat, so the digest pins the exact bit
// pattern of every double — a data-plane refactor (e.g. widening the
// 64-lane engines to 256/512 SIMD blocks) cannot silently drift an
// output without tripping one of these.
//
// The digests must hold at every forced lane width: CI re-runs this test
// with OISA_FORCE_LANE_WIDTH=64/256/portable/512.
//
// Regenerating after an *intentional* output change: run this test and
// copy the "actual" digest from the failure message (the canonical text
// is printed alongside to diff what moved).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "circuits/synthesis.h"
#include "core/isa_config.h"
#include "experiments/fault_scan.h"
#include "experiments/runner.h"
#include "fault/coverage.h"
#include "fault/fault_universe.h"
#include "fault/ppsfp.h"
#include "netlist/bench_io.h"
#include "netlist/compiled_netlist.h"
#include "sha256.h"
#include "timing/cell_library.h"

namespace {

using oisa::circuits::SynthesizedDesign;
using oisa::testing::sha256Hex;

// Checked-in goldens, generated from the 64-lane seed engines.
constexpr const char* kGoldenPrediction =
    "0af15bf0e7f7fefcdbcb3714cf64742d761fc476baa97f3f3ff59af85eab2bb3";
constexpr const char* kGoldenCombination =
    "e9279bd98efc200916874105bb281dc9c7e7a7a2f65cbb54a3b6c33602befb9b";
constexpr const char* kGoldenFaultScan =
    "537e3eb217f0477eb85d6b9160428a15e4473a55afdf18aa88e33bbb1064044b";
constexpr const char* kGoldenC17Coverage =
    "f33d7c3e03c65a6b2a4b46ea2b9b1b643a47eb3845b26bd1566cb03e2cbce09a";

/// Exact, locale-independent double rendering (C99 %a hexfloat).
std::string hexd(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// Two small paper-style ISA designs: fast enough for Debug+ASan, deep
/// enough that structural + timing + defect errors are all non-trivial.
std::vector<SynthesizedDesign> goldenDesigns() {
  oisa::circuits::SynthesisOptions options;
  options.relaxSlack = true;
  const auto lib = oisa::timing::CellLibrary::generic65();
  std::vector<SynthesizedDesign> designs;
  designs.push_back(
      oisa::circuits::synthesize(oisa::core::makeIsa(4, 1, 1, 2, 16), lib,
                                 options));
  designs.push_back(
      oisa::circuits::synthesize(oisa::core::makeIsa(4, 2, 1, 2, 16), lib,
                                 options));
  return designs;
}

TEST(GoldenDigestTest, PredictionRowsMatchGolden) {
  const auto designs = goldenDesigns();
  oisa::experiments::PredictionOptions options;
  options.run.seed = 42;
  options.run.threads = 1;
  options.trainCycles = 1200;
  options.testCycles = 600;
  const double cprs[] = {5.0, 15.0};
  const auto rows =
      oisa::experiments::runPredictionEvaluation(designs, cprs, options);

  std::string text = "design,cpr,period_ns,abper,avpe,train,test\n";
  for (const auto& r : rows) {
    text += r.design + "," + hexd(r.cprPercent) + "," + hexd(r.periodNs) +
            "," + hexd(r.abper) + "," + hexd(r.avpe) + "," +
            std::to_string(r.trainCycles) + "," +
            std::to_string(r.testCycles) + "\n";
  }
  EXPECT_EQ(sha256Hex(text), kGoldenPrediction) << "canonical text:\n"
                                                << text;
}

TEST(GoldenDigestTest, ErrorCombinationRowsMatchGolden) {
  const auto designs = goldenDesigns();
  oisa::experiments::RunOptions options;
  options.cycles = 1200;
  options.seed = 42;
  options.threads = 1;
  const double cprs[] = {5.0, 15.0};
  const auto rows =
      oisa::experiments::runErrorCombination(designs, cprs, options);

  std::string text =
      "design,cpr,period_ns,rms_struct,rms_timing,rms_joint,"
      "mean_abs_joint,struct_rate,timing_rate,cycles\n";
  for (const auto& r : rows) {
    text += r.design + "," + hexd(r.cprPercent) + "," + hexd(r.periodNs) +
            "," + hexd(r.rmsRelStruct) + "," + hexd(r.rmsRelTiming) + "," +
            hexd(r.rmsRelJoint) + "," + hexd(r.meanAbsJointArith) + "," +
            hexd(r.structErrorRate) + "," + hexd(r.timingErrorRate) + "," +
            std::to_string(r.cycles) + "\n";
  }
  EXPECT_EQ(sha256Hex(text), kGoldenCombination) << "canonical text:\n"
                                                 << text;
}

TEST(GoldenDigestTest, FaultScanRowsMatchGolden) {
  const auto designs = goldenDesigns();
  oisa::experiments::FaultScanOptions options;
  options.run.cycles = 512;
  options.run.seed = 3;
  options.run.threads = 1;
  options.cprPercent = 15.0;
  options.timedCycles = 256;
  options.timedFaults = 3;
  const auto rows = oisa::experiments::runFaultErrorScan(designs, options);

  std::string text =
      "design,universe,collapsed,detected,coverage,patterns,cpr,period_ns,"
      "rms_healthy,rms_faulty,shift,worst,timed_faults\n";
  for (const auto& r : rows) {
    text += r.design + "," + std::to_string(r.universeFaults) + "," +
            std::to_string(r.collapsedClasses) + "," +
            std::to_string(r.detectedClasses) + "," +
            hexd(r.coveragePercent) + "," + std::to_string(r.patterns) +
            "," + hexd(r.cprPercent) + "," + hexd(r.periodNs) + "," +
            hexd(r.rmsRelJointHealthy) + "," + hexd(r.rmsRelJointFaulty) +
            "," + hexd(r.eJointShift) + "," + hexd(r.worstRelJointFaulty) +
            "," + std::to_string(r.timedFaultsMeasured) + "\n";
  }
  EXPECT_EQ(sha256Hex(text), kGoldenFaultScan) << "canonical text:\n"
                                               << text;
}

TEST(GoldenDigestTest, C17RandomCoverageMatchesGolden) {
  constexpr const char* kC17 = R"(
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
  const auto compiled = oisa::netlist::CompiledNetlist::compile(
      oisa::netlist::readBenchString(kC17, "c17"));
  oisa::fault::FaultUniverse universe(compiled);
  oisa::fault::PpsfpEngine engine(compiled);
  oisa::fault::CoverageOptions options;
  options.patterns = 256;
  options.seed = 1;
  const auto result =
      oisa::fault::runRandomCoverage(universe, engine, options);

  std::string text = std::to_string(result.universeFaults) + "," +
                     std::to_string(result.collapsedClasses) + "," +
                     std::to_string(result.detectedClasses) + "," +
                     std::to_string(result.patternsApplied) + "\n";
  for (std::size_t ci = 0; ci < result.firstDetectedAt.size(); ++ci) {
    text += std::to_string(ci) + ":" +
            std::to_string(static_cast<int>(result.detected[ci])) + ":" +
            std::to_string(result.firstDetectedAt[ci]) + "\n";
  }
  EXPECT_EQ(sha256Hex(text), kGoldenC17Coverage) << "canonical text:\n"
                                                 << text;
}

}  // namespace
