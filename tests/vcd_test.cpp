// Golden-output tests for the VCD waveform writer: exact header
// (timescale, scope, var declarations), event ordering (grouped,
// strictly-increasing timestamps) and change-only recording, driven by a
// real TimedSimulator run over an annotated netlist.
#include <gtest/gtest.h>

#include <sstream>

#include "netlist/gate.h"
#include "netlist/netlist.h"
#include "timing/cell_library.h"
#include "timing/delay_annotation.h"
#include "timing/event_sim.h"
#include "timing/vcd.h"

namespace {

using oisa::netlist::GateKind;
using oisa::netlist::Netlist;
using oisa::netlist::NetId;
using oisa::timing::CellLibrary;
using oisa::timing::DelayAnnotation;
using oisa::timing::TimedSimulator;
using oisa::timing::VcdWriter;

CellLibrary unitLibrary() {
  CellLibrary lib;
  for (const GateKind kind : oisa::netlist::allGateKinds()) {
    lib.cell(kind) = oisa::timing::CellTiming{1.0, 0.0, 1.0};
  }
  return lib;
}

/// a -> INV -> INV -> y at 1 ns per stage: y follows a after exactly 2 ns.
Netlist inverterPair() {
  Netlist nl("vcdtop");
  NetId n = nl.input("a");
  n = nl.gate1(GateKind::Inv, n);
  n = nl.gate1(GateKind::Inv, n, "y");
  nl.output("y", n);
  return nl;
}

TEST(VcdWriterTest, GoldenOutputOfAnAnnotatedRun) {
  const Netlist nl = inverterPair();
  const DelayAnnotation delays(nl, unitLibrary());
  TimedSimulator sim(nl, delays);

  VcdWriter vcd = VcdWriter::forPorts(nl);
  sim.setChangeObserver([&](double timeNs, NetId net, bool value) {
    vcd.record(timeNs, net, value);
  });

  // Initial snapshot at t=0, then two input edges: a rises at 0 (y follows
  // at 2 ns), a falls at 3 ns (y follows at 5 ns).
  vcd.sample(0.0, sim.netValues());
  sim.applyInputs(std::vector<std::uint8_t>{1});
  (void)sim.settlePs();
  sim.advancePs(1000);  // park the clock at 3 ns
  sim.applyInputs(std::vector<std::uint8_t>{0});
  (void)sim.settlePs();

  std::ostringstream os;
  vcd.write(os);
  const std::string expected =
      "$date oisa $end\n"
      "$version oisa timed simulator $end\n"
      "$timescale 1ps $end\n"
      "$scope module vcdtop $end\n"
      "$var wire 1 ! a $end\n"
      "$var wire 1 \" y $end\n"
      "$upscope $end\n"
      "$enddefinitions $end\n"
      "#0\n"
      "0!\n"
      "0\"\n"
      "1!\n"
      "#2000\n"
      "1\"\n"
      "#3000\n"
      "0!\n"
      "#5000\n"
      "0\"\n";
  EXPECT_EQ(os.str(), expected);
  EXPECT_EQ(vcd.changeCount(), 6u);
}

TEST(VcdWriterTest, SampleKeepsOnlyChanges) {
  const Netlist nl = inverterPair();
  const DelayAnnotation delays(nl, unitLibrary());
  TimedSimulator sim(nl, delays);
  VcdWriter vcd = VcdWriter::forPorts(nl);

  vcd.sample(0.0, sim.netValues());
  const std::size_t initial = vcd.changeCount();
  EXPECT_EQ(initial, 2u);  // a and y recorded once
  vcd.sample(1.0, sim.netValues());  // nothing changed: no new records
  EXPECT_EQ(vcd.changeCount(), initial);
}

TEST(VcdWriterTest, RejectsInvalidObservedNets) {
  const Netlist nl = inverterPair();
  EXPECT_THROW(VcdWriter(nl, {NetId{999}}), std::invalid_argument);
  VcdWriter vcd = VcdWriter::forPorts(nl);
  EXPECT_THROW(vcd.sample(0.0, std::vector<std::uint8_t>(1, 0)),
               std::invalid_argument);
}

}  // namespace
