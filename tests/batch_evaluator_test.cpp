// Word-parallel batch evaluation: lane-for-lane equivalence against the
// scalar Evaluator on every adder topology and ISA design, the 64x64 bit
// transpose, the pattern-major packing edge cases, and the batch-backed
// functional error scan pipeline.
#include <gtest/gtest.h>

#include <array>
#include <random>
#include <vector>

#include "circuits/adder_topologies.h"
#include "circuits/isa_netlist.h"
#include "circuits/synthesis.h"
#include "core/analysis.h"
#include "experiments/runner.h"
#include "netlist/batch_evaluator.h"
#include "netlist/bitops.h"
#include "netlist/evaluator.h"
#include "timing/cell_library.h"

namespace {

using oisa::circuits::AdderTopology;
using oisa::circuits::allTopologies;
using oisa::circuits::buildAdder;
using oisa::circuits::topologyName;
using oisa::netlist::BatchEvaluator;
using oisa::netlist::evalGateWord;
using oisa::netlist::Evaluator;
using oisa::netlist::GateKind;
using oisa::netlist::Netlist;
using oisa::netlist::NetId;
using oisa::netlist::transpose64;

Netlist makeAdderNetlist(int width, AdderTopology topology) {
  Netlist nl("adder");
  std::vector<NetId> a;
  std::vector<NetId> b;
  for (int i = 0; i < width; ++i) a.push_back(nl.input("a" + std::to_string(i)));
  for (int i = 0; i < width; ++i) b.push_back(nl.input("b" + std::to_string(i)));
  const NetId cin = nl.input("cin");
  const auto ports = buildAdder(nl, a, b, cin, topology);
  for (int i = 0; i < width; ++i) {
    nl.output("s" + std::to_string(i), ports.sum[static_cast<std::size_t>(i)]);
  }
  nl.output("cout", ports.carryOut);
  return nl;
}

TEST(TransposeTest, RoundTripsRandomMatrices) {
  std::mt19937_64 rng(21);
  for (int rep = 0; rep < 10; ++rep) {
    std::array<std::uint64_t, 64> m{};
    for (auto& row : m) row = rng();
    const auto original = m;
    transpose64(m);
    // Spot-check the definition: bit j of transposed row i = bit i of
    // original row j.
    for (int i = 0; i < 64; i += 7) {
      for (int j = 0; j < 64; j += 5) {
        EXPECT_EQ((m[static_cast<std::size_t>(i)] >> j) & 1u,
                  (original[static_cast<std::size_t>(j)] >> i) & 1u)
            << "(" << i << "," << j << ")";
      }
    }
    transpose64(m);
    EXPECT_EQ(m, original);
  }
}

TEST(BatchEvaluatorTest, GateWordMatchesScalarGateOnAllKinds) {
  // Lane 0 = (0,0,0), lane 1 = (1,0,0), ... lane 7 = (1,1,1): every input
  // combination of every kind, all in one word per operand.
  const std::uint64_t a = 0xaa;  // bit L = L&1
  const std::uint64_t b = 0xcc;  // bit L = (L>>1)&1
  const std::uint64_t c = 0xf0;  // bit L = (L>>2)&1
  for (const GateKind kind : oisa::netlist::allGateKinds()) {
    const std::uint64_t word = evalGateWord(kind, a, b, c);
    for (int lane = 0; lane < 8; ++lane) {
      const bool expected =
          evalGate(kind, (lane & 1) != 0, (lane & 2) != 0, (lane & 4) != 0);
      EXPECT_EQ((word >> lane) & 1u, expected ? 1u : 0u)
          << gateName(kind) << " lane " << lane;
    }
  }
}

TEST(BatchEvaluatorTest, MatchesScalarOnEveryAdderTopology) {
  std::mt19937_64 rng(33);
  for (const AdderTopology topology : allTopologies()) {
    const Netlist nl = makeAdderNetlist(16, topology);
    const Evaluator scalar(nl);
    const BatchEvaluator batch(nl);
    const std::size_t n = nl.primaryInputs().size();

    // 64 random vectors, lane-major.
    std::vector<std::vector<std::uint8_t>> vectors(64,
                                                   std::vector<std::uint8_t>(n));
    std::vector<std::uint64_t> inWords(n, 0);
    for (std::size_t lane = 0; lane < 64; ++lane) {
      for (std::size_t i = 0; i < n; ++i) {
        vectors[lane][i] = static_cast<std::uint8_t>(rng() & 1u);
        if (vectors[lane][i]) inWords[i] |= std::uint64_t{1} << lane;
      }
    }
    const auto outWords = batch.evaluateOutputs(inWords);
    for (std::size_t lane = 0; lane < 64; ++lane) {
      const auto scalarOut = scalar.evaluateOutputs(vectors[lane]);
      for (std::size_t o = 0; o < scalarOut.size(); ++o) {
        EXPECT_EQ((outWords[o] >> lane) & 1u, scalarOut[o])
            << topologyName(topology) << " lane " << lane << " output " << o;
      }
    }
  }
}

TEST(BatchEvaluatorTest, MatchesScalarOnIsaDesigns) {
  std::mt19937_64 rng(35);
  for (const auto& cfg : oisa::core::paperDesigns()) {
    const Netlist nl = oisa::circuits::buildIsaNetlist(cfg);
    const Evaluator scalar(nl);
    const BatchEvaluator batch(nl);
    const std::size_t n = nl.primaryInputs().size();
    std::vector<std::uint64_t> inWords(n);
    for (auto& w : inWords) w = rng();
    const auto batchValues = batch.evaluate(inWords);
    ASSERT_EQ(batchValues.size(), nl.netCount());
    std::vector<std::uint8_t> in(n);
    for (const std::size_t lane : {std::size_t{0}, std::size_t{17},
                                   std::size_t{63}}) {
      for (std::size_t i = 0; i < n; ++i) {
        in[i] = static_cast<std::uint8_t>((inWords[i] >> lane) & 1u);
      }
      const auto scalarValues = scalar.evaluate(in);
      for (std::size_t net = 0; net < scalarValues.size(); ++net) {
        ASSERT_EQ((batchValues[net] >> lane) & 1u, scalarValues[net])
            << cfg.name() << " net " << net << " lane " << lane;
      }
    }
  }
}

TEST(BatchEvaluatorTest, EvaluateWordsMatchesScalarEvaluateWord) {
  // 16-bit adder: 33 inputs, 17 outputs — within the <= 64-port limit.
  const Netlist nl = makeAdderNetlist(16, AdderTopology::KoggeStone);
  const Evaluator scalar(nl);
  const BatchEvaluator batch(nl);
  std::mt19937_64 rng(37);
  // Full batch of 64 and partial batches covering the edge sizes.
  for (const std::size_t count : {std::size_t{1}, std::size_t{2},
                                  std::size_t{63}, std::size_t{64}}) {
    std::vector<std::uint64_t> patterns(count);
    const std::uint64_t portMask =
        (std::uint64_t{1} << nl.primaryInputs().size()) - 1;
    for (auto& p : patterns) p = rng() & portMask;
    const auto results = batch.evaluateWords(patterns);
    ASSERT_EQ(results.size(), count);
    for (std::size_t p = 0; p < count; ++p) {
      EXPECT_EQ(results[p], scalar.evaluateWord(patterns[p]))
          << "batch size " << count << " pattern " << p;
    }
  }
}

TEST(BatchEvaluatorTest, RejectsBadShapes) {
  const Netlist nl = makeAdderNetlist(8, AdderTopology::RippleCarry);
  const BatchEvaluator batch(nl);
  std::vector<std::uint64_t> wrong(nl.primaryInputs().size() + 1, 0);
  EXPECT_THROW((void)batch.evaluate(wrong), std::invalid_argument);
  EXPECT_THROW((void)batch.evaluateWords({}), std::invalid_argument);
  const std::vector<std::uint64_t> tooMany(65, 0);
  EXPECT_THROW((void)batch.evaluateWords(tooMany), std::invalid_argument);

  // > 64 primary inputs: lane-major still works, pattern-major must throw.
  const Netlist wide = makeAdderNetlist(32, AdderTopology::Sklansky);
  const BatchEvaluator wideBatch(wide);
  const std::vector<std::uint64_t> one(1, 0);
  EXPECT_THROW((void)wideBatch.evaluateWords(one), std::invalid_argument);
  const std::vector<std::uint64_t> zeros(wide.primaryInputs().size(), 0);
  EXPECT_NO_THROW((void)wideBatch.evaluateOutputs(zeros));
}

TEST(FunctionalErrorScanTest, MatchesBehavioralModelAndClosedForms) {
  const auto lib = oisa::timing::CellLibrary::generic65();
  std::vector<oisa::circuits::SynthesizedDesign> designs;
  designs.push_back(oisa::circuits::synthesize(oisa::core::makeIsa(8, 0, 0, 0), lib));
  designs.push_back(oisa::circuits::synthesize(oisa::core::makeIsa(8, 2, 1, 4), lib));
  designs.push_back(oisa::circuits::synthesize(oisa::core::makeExact(32), lib));

  oisa::experiments::RunOptions options;
  options.cycles = 20000;
  options.threads = 1;
  const auto rows = oisa::experiments::runFunctionalErrorScan(designs, options);
  ASSERT_EQ(rows.size(), designs.size());
  for (const auto& row : rows) {
    EXPECT_EQ(row.samples, options.cycles) << row.design;
    // The scan's golden-model cross-check: gate-level functional output
    // must equal the behavioral y_gold on every sample.
    EXPECT_TRUE(row.matchesBehavioral) << row.design;
  }
  // The exact design never errs; the speculative ones track the closed form.
  EXPECT_EQ(rows[2].structErrorRate, 0.0);
  const double predicted =
      oisa::core::structuralErrorRateApprox(designs[0].config);
  EXPECT_NEAR(rows[0].structErrorRate, predicted, 0.1 * predicted + 0.01);
  EXPECT_GT(rows[0].structErrorRate, rows[1].structErrorRate);
}

}  // namespace
