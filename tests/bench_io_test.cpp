// netlist::readBench — the ISCAS-85 `.bench` importer: c17 end-to-end
// (structure + exhaustive functional equivalence against a hand-built
// NAND network), wide-gate decomposition, and the rejection diagnostics.
#include <gtest/gtest.h>

#include <stdexcept>

#include "netlist/bench_io.h"
#include "netlist/evaluator.h"
#include "netlist/gate.h"
#include "netlist/netlist.h"

namespace {

using oisa::netlist::Evaluator;
using oisa::netlist::GateKind;
using oisa::netlist::Netlist;
using oisa::netlist::NetId;
using oisa::netlist::readBenchString;

constexpr const char* kC17 = R"(
# c17 — smallest ISCAS-85 benchmark
# (comment and blank lines must be ignored)

INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)

OUTPUT(22)
OUTPUT(23)

10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

TEST(BenchIoTest, ParsesC17Structure) {
  const Netlist nl = readBenchString(kC17, "c17");
  EXPECT_EQ(nl.name(), "c17");
  EXPECT_EQ(nl.primaryInputs().size(), 5u);
  EXPECT_EQ(nl.primaryOutputs().size(), 2u);
  EXPECT_EQ(nl.gateCount(), 6u);
  EXPECT_EQ(nl.netCount(), 11u);
  const auto histogram = nl.histogram();
  EXPECT_EQ(histogram.of(GateKind::Nand2), 6u);
  EXPECT_EQ(histogram.total(), 6u);
  EXPECT_EQ(nl.outputName(0), "22");
  EXPECT_EQ(nl.outputName(1), "23");
}

TEST(BenchIoTest, C17MatchesHandBuiltNetworkExhaustively) {
  const Netlist parsed = readBenchString(kC17, "c17");

  Netlist built("c17ref");
  const NetId n1 = built.input("1");
  const NetId n2 = built.input("2");
  const NetId n3 = built.input("3");
  const NetId n6 = built.input("6");
  const NetId n7 = built.input("7");
  const NetId n10 = built.gate2(GateKind::Nand2, n1, n3);
  const NetId n11 = built.gate2(GateKind::Nand2, n3, n6);
  const NetId n16 = built.gate2(GateKind::Nand2, n2, n11);
  const NetId n19 = built.gate2(GateKind::Nand2, n11, n7);
  built.output("22", built.gate2(GateKind::Nand2, n10, n16));
  built.output("23", built.gate2(GateKind::Nand2, n16, n19));

  const Evaluator lhs(parsed);
  const Evaluator rhs(built);
  for (std::uint64_t p = 0; p < 32; ++p) {
    EXPECT_EQ(lhs.evaluateWord(p), rhs.evaluateWord(p)) << "pattern " << p;
  }
}

TEST(BenchIoTest, StatementsResolveInAnyOrder) {
  // Definition used before it appears; outputs declared first.
  const Netlist nl = readBenchString(R"(
OUTPUT(y)
y = AND(t, b)
t = NOT(a)
INPUT(a)
INPUT(b)
)");
  const Evaluator eval(nl);
  // y = !a & b; inputs in declaration order: a, b.
  EXPECT_EQ(eval.evaluateWord(0b10), 1u);  // a=0, b=1
  EXPECT_EQ(eval.evaluateWord(0b11), 0u);  // a=1, b=1
  EXPECT_EQ(eval.evaluateWord(0b00), 0u);
}

TEST(BenchIoTest, DecomposesWideGates) {
  const Netlist nl = readBenchString(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
OUTPUT(all)
OUTPUT(none)
OUTPUT(odd)
all = AND(a, b, c, d, e)
none = NOR(a, b, c, d, e)
odd = XOR(a, b, c, d, e)
)");
  const Evaluator eval(nl);
  for (std::uint64_t p = 0; p < 32; ++p) {
    const bool a = (p & 1) != 0;
    const bool b = (p & 2) != 0;
    const bool c = (p & 4) != 0;
    const bool d = (p & 8) != 0;
    const bool e = (p & 16) != 0;
    const std::uint64_t outputs = eval.evaluateWord(p);
    EXPECT_EQ(outputs & 1u, (a && b && c && d && e) ? 1u : 0u) << p;
    EXPECT_EQ((outputs >> 1) & 1u, (!a && !b && !c && !d && !e) ? 1u : 0u)
        << p;
    EXPECT_EQ((outputs >> 2) & 1u,
              static_cast<unsigned>(a ^ b ^ c ^ d ^ e))
        << p;
  }
}

TEST(BenchIoTest, SupportsNand3AndBuff) {
  const Netlist nl = readBenchString(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
OUTPUT(z)
y = NAND(a, b, c)
z = BUFF(a)
)");
  const Evaluator eval(nl);
  for (std::uint64_t p = 0; p < 8; ++p) {
    const bool a = (p & 1) != 0;
    const bool b = (p & 2) != 0;
    const bool c = (p & 4) != 0;
    const std::uint64_t outputs = eval.evaluateWord(p);
    EXPECT_EQ(outputs & 1u, !(a && b && c) ? 1u : 0u);
    EXPECT_EQ((outputs >> 1) & 1u, a ? 1u : 0u);
  }
}

TEST(BenchIoTest, RejectsMalformedInput) {
  // Undefined signal.
  EXPECT_THROW((void)readBenchString("INPUT(a)\nOUTPUT(y)\ny = AND(a, q)\n"),
               std::runtime_error);
  // Double definition.
  EXPECT_THROW((void)readBenchString(
                   "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n"),
               std::runtime_error);
  // Sequential element.
  EXPECT_THROW(
      (void)readBenchString("INPUT(a)\nOUTPUT(y)\ny = DFF(a)\n"),
      std::runtime_error);
  // Unknown cell.
  EXPECT_THROW(
      (void)readBenchString("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n"),
      std::runtime_error);
  // Combinational cycle.
  EXPECT_THROW((void)readBenchString(
                   "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = NOT(y)\n"),
               std::runtime_error);
  // NOT arity.
  EXPECT_THROW(
      (void)readBenchString("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n"),
      std::runtime_error);
  // Garbage line.
  EXPECT_THROW((void)readBenchString("INPUT(a)\nwhat is this\n"),
               std::runtime_error);
}

TEST(BenchIoTest, DeepChainsResolveWithoutRecursion) {
  // A generated 40000-deep inverter chain must parse (iterative
  // resolution), not overflow the call stack.
  constexpr int kDepth = 40000;
  std::string text = "INPUT(g0)\nOUTPUT(g" + std::to_string(kDepth) + ")\n";
  for (int i = 1; i <= kDepth; ++i) {
    text += "g" + std::to_string(i) + " = NOT(g" + std::to_string(i - 1) +
            ")\n";
  }
  const Netlist nl = readBenchString(text, "chain");
  EXPECT_EQ(nl.gateCount(), static_cast<std::size_t>(kDepth));
  const Evaluator eval(nl);
  // Even inverter count: the chain is the identity.
  EXPECT_EQ(eval.evaluateWord(1), 1u);
  EXPECT_EQ(eval.evaluateWord(0), 0u);
}

TEST(BenchIoTest, MissingFileThrows) {
  EXPECT_THROW((void)oisa::netlist::readBenchFile("/nonexistent/x.bench"),
               std::runtime_error);
}

}  // namespace
