// Experiments harness tests: workloads, CLI, reporting, and small-scale
// runs of the figure pipelines.
#include <gtest/gtest.h>

#include <sstream>

#include "core/isa_adder.h"
#include "core/status.h"
#include "experiments/cli.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "experiments/trace_collector.h"
#include "experiments/workload.h"

namespace {

using oisa::circuits::SynthesisOptions;
using oisa::circuits::synthesize;
using oisa::experiments::ArgParser;
using oisa::experiments::overclockedPeriodNs;
using oisa::experiments::RunOptions;
using oisa::experiments::Stimulus;
using oisa::experiments::Table;
using oisa::experiments::UniformWorkload;

TEST(WorkloadTest, UniformIsSeededAndBounded) {
  UniformWorkload w1(16, 5), w2(16, 5), w3(16, 6);
  bool anyDiffer = false;
  for (int i = 0; i < 100; ++i) {
    const Stimulus a = w1.next();
    const Stimulus b = w2.next();
    const Stimulus c = w3.next();
    EXPECT_EQ(a.a, b.a);
    EXPECT_EQ(a.b, b.b);
    EXPECT_LT(a.a, 1u << 16);
    EXPECT_LT(a.b, 1u << 16);
    if (a.a != c.a) anyDiffer = true;
  }
  EXPECT_TRUE(anyDiffer);
}

TEST(WorkloadTest, RandomWalkTakesBoundedSteps) {
  oisa::experiments::RandomWalkWorkload walk(32, 8, 9);
  Stimulus prev = walk.next();
  for (int i = 0; i < 200; ++i) {
    const Stimulus cur = walk.next();
    const auto diff = static_cast<std::int64_t>(
        (cur.a - prev.a) & 0xffffffffull);
    const std::int64_t step = diff < (1ll << 31) ? diff : diff - (1ll << 32);
    EXPECT_LE(std::abs(step), 256);
    prev = cur;
  }
}

TEST(WorkloadTest, SparseToggleHasLowActivity) {
  oisa::experiments::SparseToggleWorkload sparse(32, 0.05, 11);
  Stimulus prev = sparse.next();
  std::uint64_t toggles = 0;
  const int cycles = 500;
  for (int i = 0; i < cycles; ++i) {
    const Stimulus cur = sparse.next();
    toggles += std::popcount(cur.a ^ prev.a) + std::popcount(cur.b ^ prev.b);
    prev = cur;
  }
  // Expected toggles ~ 0.05 * 64 = 3.2 per cycle; allow generous slack.
  EXPECT_LT(static_cast<double>(toggles) / cycles, 8.0);
  EXPECT_GT(toggles, 0u);
}

TEST(WorkloadTest, FactoryKnowsAllKindsAndRejectsOthers) {
  for (const char* kind : {"uniform", "random-walk", "sparse-toggle"}) {
    const auto w = oisa::experiments::makeWorkload(kind, 32, 1);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->name(), kind);
  }
  EXPECT_THROW((void)oisa::experiments::makeWorkload("nope", 32, 1),
               std::invalid_argument);
}

TEST(CliTest, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--cycles=1000", "--relax",
                        "--workload=uniform", "--cpr=12.5"};
  const ArgParser args(5, argv);
  EXPECT_EQ(args.getU64("cycles", 1), 1000u);
  EXPECT_TRUE(args.getBool("relax", false));
  EXPECT_EQ(args.getString("workload", "x"), "uniform");
  EXPECT_DOUBLE_EQ(args.getDouble("cpr", 0.0), 12.5);
  EXPECT_EQ(args.getU64("missing", 7), 7u);
  EXPECT_FALSE(args.has("missing"));
}

TEST(CliTest, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(ArgParser(2, argv), oisa::core::StatusError);
}

TEST(CliTest, DiagnosesMalformedValues) {
  const char* argv[] = {"prog", "--cycles=banana", "--cpr=1.2.3",
                        "--relax=maybe"};
  const ArgParser args(4, argv);
  // Each conversion failure names the flag, the expected type and the
  // offending text — no bare stoull/stod exceptions.
  try {
    (void)args.getU64("cycles", 0);
    FAIL() << "expected StatusError";
  } catch (const oisa::core::StatusError& e) {
    EXPECT_EQ(e.status().code(), oisa::core::StatusCode::InvalidInput);
    EXPECT_NE(e.status().message().find("--cycles"), std::string::npos);
    EXPECT_NE(e.status().message().find("banana"), std::string::npos);
  }
  EXPECT_THROW((void)args.getDouble("cpr", 0.0), oisa::core::StatusError);
  EXPECT_THROW((void)args.getBool("relax", false), oisa::core::StatusError);
  // Negative and hex spellings are rejected for unsigned flags instead
  // of wrapping.
  const char* argv2[] = {"prog", "--cycles=-5", "--seed=0x10"};
  const ArgParser args2(3, argv2);
  EXPECT_THROW((void)args2.getU64("cycles", 0), oisa::core::StatusError);
  EXPECT_THROW((void)args2.getU64("seed", 0), oisa::core::StatusError);
}

TEST(CliTest, PositiveU64RejectsZeroByName) {
  // --checkpoint-every=0 would disable autosaving while claiming to
  // checkpoint, and --shards=0 has no meaning: both are rejected up
  // front with a diagnostic naming the flag.
  const char* argv[] = {"prog", "--checkpoint-every=0", "--shards=4"};
  const ArgParser args(3, argv);
  try {
    (void)args.getPositiveU64("checkpoint-every", 8);
    FAIL() << "expected StatusError";
  } catch (const oisa::core::StatusError& e) {
    EXPECT_EQ(e.status().code(), oisa::core::StatusCode::InvalidInput);
    EXPECT_NE(e.status().message().find("--checkpoint-every"),
              std::string::npos);
  }
  // Positive values and absent-flag fallbacks pass through unchanged.
  EXPECT_EQ(args.getPositiveU64("shards", 1), 4u);
  EXPECT_EQ(args.getPositiveU64("missing", 7), 7u);
}

TEST(CliTest, PositiveU64KeepsTheUnsignedDiagnostics) {
  // Negative spellings hit getU64's unsigned rejection first, so
  // --retries=-1 and --shards=-2 fail with the same named diagnostic
  // shape as every other unsigned flag.
  const char* argv[] = {"prog", "--retries=-1", "--shards=banana"};
  const ArgParser args(3, argv);
  try {
    (void)args.getU64("retries", 1);
    FAIL() << "expected StatusError";
  } catch (const oisa::core::StatusError& e) {
    EXPECT_EQ(e.status().code(), oisa::core::StatusCode::InvalidInput);
    EXPECT_NE(e.status().message().find("--retries"), std::string::npos);
    EXPECT_NE(e.status().message().find("-1"), std::string::npos);
  }
  EXPECT_THROW((void)args.getPositiveU64("shards", 1),
               oisa::core::StatusError);
}

TEST(ReportTest, TableAlignsAndEmitsCsv) {
  Table table({"design", "value"});
  table.addRow({"(8,0,0,4)", "1.5e-02"});
  table.addRow({"exact", "3.0e+00"});
  std::ostringstream ascii, csv;
  table.print(ascii);
  table.writeCsv(csv);
  EXPECT_NE(ascii.str().find("(8,0,0,4)"), std::string::npos);
  EXPECT_NE(ascii.str().find("design"), std::string::npos);
  EXPECT_EQ(csv.str(),
            "design,value\n(8,0,0,4),1.5e-02\nexact,3.0e+00\n");
  EXPECT_THROW(table.addRow({"too", "many", "cells"}), std::invalid_argument);
}

TEST(ReportTest, FormattersAndFloor) {
  EXPECT_EQ(oisa::experiments::formatFixed(1.23456, 2), "1.23");
  EXPECT_NE(oisa::experiments::formatSci(0.000123, 2).find("e-04"),
            std::string::npos);
  EXPECT_DOUBLE_EQ(oisa::experiments::displayFloor(0.0), 1e-6);
  EXPECT_DOUBLE_EQ(oisa::experiments::displayFloor(0.5), 0.5);
}

TEST(OverclockTest, PeriodsMatchPaperCprs) {
  EXPECT_DOUBLE_EQ(overclockedPeriodNs(0.3, 5.0), 0.285);
  EXPECT_DOUBLE_EQ(overclockedPeriodNs(0.3, 10.0), 0.27);
  EXPECT_DOUBLE_EQ(overclockedPeriodNs(0.3, 15.0), 0.255);
}

TEST(TraceCollectorTest, GoldenFieldsMatchBehavioralModel) {
  const auto lib = oisa::timing::CellLibrary::generic65();
  const auto design =
      synthesize(oisa::core::makeIsa(8, 0, 0, 4), lib, SynthesisOptions{});
  UniformWorkload workload(32, 3);
  const auto trace =
      oisa::experiments::collectTrace(design, 10.0, workload, 100);
  ASSERT_EQ(trace.size(), 100u);
  const oisa::core::IsaAdder behavioral(design.config);
  for (const auto& rec : trace) {
    EXPECT_EQ(rec.gold, behavioral.add(rec.a, rec.b, rec.carryIn).sum);
    EXPECT_EQ(rec.diamond,
              behavioral.exactAdd(rec.a, rec.b, rec.carryIn).sum);
    // Period far above critical delay: silver == gold.
    EXPECT_EQ(rec.silver, rec.gold);
    EXPECT_EQ(rec.silverCout, rec.goldCout);
  }
}

TEST(RunnerTest, ErrorCombinationRowsAreConsistent) {
  const auto lib = oisa::timing::CellLibrary::generic65();
  std::vector<oisa::circuits::SynthesizedDesign> designs;
  designs.push_back(
      synthesize(oisa::core::makeIsa(8, 0, 0, 4), lib, SynthesisOptions{}));
  designs.push_back(
      synthesize(oisa::core::makeExact(32), lib, SynthesisOptions{}));

  RunOptions options;
  options.cycles = 400;
  const double cprs[] = {0.0, 15.0};
  const auto rows =
      runErrorCombination(designs, cprs, options);
  ASSERT_EQ(rows.size(), 4u);

  for (const auto& row : rows) {
    EXPECT_EQ(row.cycles, 400u);
    EXPECT_GE(row.rmsRelJoint, 0.0);
    if (row.cprPercent == 0.0) {
      // No overclocking: no timing errors at the sign-off period.
      EXPECT_EQ(row.timingErrorRate, 0.0) << row.design;
    }
  }
  // The exact adder has zero structural error at any clock.
  for (const auto& row : rows) {
    if (row.design == "exact") {
      EXPECT_EQ(row.rmsRelStruct, 0.0);
      EXPECT_EQ(row.structErrorRate, 0.0);
    } else {
      EXPECT_GT(row.rmsRelStruct, 0.0);
    }
  }
}

TEST(RunnerTest, ThreadCountDoesNotChangeResults) {
  const auto lib = oisa::timing::CellLibrary::generic65();
  std::vector<oisa::circuits::SynthesizedDesign> designs;
  designs.push_back(
      synthesize(oisa::core::makeIsa(8, 0, 0, 4), lib, SynthesisOptions{}));
  designs.push_back(
      synthesize(oisa::core::makeIsa(16, 1, 0, 2), lib, SynthesisOptions{}));

  RunOptions serial;
  serial.cycles = 300;
  serial.threads = 1;
  RunOptions parallel = serial;
  parallel.threads = 4;
  const double cprs[] = {5.0, 15.0};
  const auto a = runErrorCombination(designs, cprs, serial);
  const auto b = runErrorCombination(designs, cprs, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].design, b[i].design);
    EXPECT_DOUBLE_EQ(a[i].rmsRelJoint, b[i].rmsRelJoint);
    EXPECT_DOUBLE_EQ(a[i].rmsRelTiming, b[i].rmsRelTiming);
    EXPECT_EQ(a[i].cycles, b[i].cycles);
  }
}

TEST(RunnerTest, BitDistributionSeparatesStructuralAndTiming) {
  const auto lib = oisa::timing::CellLibrary::generic65();
  const auto design =
      synthesize(oisa::core::makeIsa(8, 0, 0, 4), lib, SynthesisOptions{});
  RunOptions options;
  options.cycles = 500;
  const auto dist = runBitDistribution(design, 0.0, options);
  ASSERT_EQ(dist.structuralRate.size(), 33u);
  ASSERT_EQ(dist.timingRate.size(), 33u);
  // At the sign-off clock there are no timing errors at all.
  for (const double rate : dist.timingRate) EXPECT_EQ(rate, 0.0);
  // (8,0,0,4) pushes structural errors into the balanced top-4 bits of the
  // first three blocks: positions 4..7, 12..15, 20..23.
  double balancedBand = 0.0;
  for (const int pos : {4, 5, 6, 7, 12, 13, 14, 15, 20, 21, 22, 23}) {
    balancedBand += dist.structuralRate[static_cast<std::size_t>(pos)];
  }
  EXPECT_GT(balancedBand, 0.0);
  // The first path never errs structurally (true carry-in, no balancing).
  for (const int pos : {0, 1, 2, 3}) {
    EXPECT_EQ(dist.structuralRate[static_cast<std::size_t>(pos)], 0.0);
  }
}

}  // namespace
