// Unit tests for the gate-level IR: construction, invariants, evaluation.
#include <gtest/gtest.h>

#include <sstream>

#include "netlist/dot.h"
#include "netlist/evaluator.h"
#include "netlist/netlist.h"

namespace {

using oisa::netlist::Evaluator;
using oisa::netlist::GateKind;
using oisa::netlist::Netlist;
using oisa::netlist::NetId;

TEST(GateKindTest, ArityMatchesDefinition) {
  EXPECT_EQ(oisa::netlist::gateArity(GateKind::Const0), 0);
  EXPECT_EQ(oisa::netlist::gateArity(GateKind::Inv), 1);
  EXPECT_EQ(oisa::netlist::gateArity(GateKind::Xor2), 2);
  EXPECT_EQ(oisa::netlist::gateArity(GateKind::Maj3), 3);
  EXPECT_EQ(oisa::netlist::gateArity(GateKind::Mux2), 3);
}

// Exhaustive truth-table check of every gate function.
class GateEvalTest : public ::testing::TestWithParam<GateKind> {};

TEST_P(GateEvalTest, TruthTableMatchesReference) {
  const GateKind kind = GetParam();
  for (int pattern = 0; pattern < 8; ++pattern) {
    const bool a = (pattern & 1) != 0;
    const bool b = (pattern & 2) != 0;
    const bool c = (pattern & 4) != 0;
    bool expected = false;
    switch (kind) {
      case GateKind::Const0: expected = false; break;
      case GateKind::Const1: expected = true; break;
      case GateKind::Buf: expected = a; break;
      case GateKind::Inv: expected = !a; break;
      case GateKind::And2: expected = a && b; break;
      case GateKind::Or2: expected = a || b; break;
      case GateKind::Nand2: expected = !(a && b); break;
      case GateKind::Nor2: expected = !(a || b); break;
      case GateKind::Xor2: expected = a != b; break;
      case GateKind::Xnor2: expected = a == b; break;
      case GateKind::And3: expected = a && b && c; break;
      case GateKind::Or3: expected = a || b || c; break;
      case GateKind::Aoi21: expected = !((a && b) || c); break;
      case GateKind::Oai21: expected = !((a || b) && c); break;
      case GateKind::Mux2: expected = c ? b : a; break;
      case GateKind::Maj3:
        expected = (a && b) || (a && c) || (b && c);
        break;
    }
    EXPECT_EQ(oisa::netlist::evalGate(kind, a, b, c), expected)
        << oisa::netlist::gateName(kind) << " pattern " << pattern;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, GateEvalTest,
                         ::testing::ValuesIn(oisa::netlist::allGateKinds()),
                         [](const auto& info) {
                           return std::string(
                               oisa::netlist::gateName(info.param));
                         });

TEST(NetlistTest, BuildsHalfAdder) {
  Netlist nl("half_adder");
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  const NetId s = nl.gate2(GateKind::Xor2, a, b);
  const NetId c = nl.gate2(GateKind::And2, a, b);
  nl.output("s", s);
  nl.output("c", c);
  nl.validate();

  EXPECT_EQ(nl.gateCount(), 2u);
  EXPECT_EQ(nl.netCount(), 4u);
  EXPECT_EQ(nl.primaryInputs().size(), 2u);
  EXPECT_EQ(nl.primaryOutputs().size(), 2u);

  const Evaluator eval(nl);
  for (int pattern = 0; pattern < 4; ++pattern) {
    const std::uint8_t av = pattern & 1;
    const std::uint8_t bv = (pattern >> 1) & 1;
    const std::vector<std::uint8_t> in{av, bv};
    const auto out = eval.evaluateOutputs(in);
    EXPECT_EQ(out[0], av ^ bv);
    EXPECT_EQ(out[1], av & bv);
  }
}

TEST(NetlistTest, GateRejectsWrongArity) {
  Netlist nl;
  const NetId a = nl.input("a");
  EXPECT_THROW((void)nl.gate2(GateKind::Inv, a, a), std::invalid_argument);
  EXPECT_THROW((void)nl.gate1(GateKind::And2, a), std::invalid_argument);
}

TEST(NetlistTest, GateRejectsInvalidNet) {
  Netlist nl;
  EXPECT_THROW((void)nl.gate1(GateKind::Inv, NetId{}), std::invalid_argument);
  EXPECT_THROW((void)nl.gate1(GateKind::Inv, NetId{42}),
               std::invalid_argument);
}

TEST(NetlistTest, ConstantsAreCached) {
  Netlist nl;
  const NetId c0a = nl.constant(false);
  const NetId c0b = nl.constant(false);
  const NetId c1 = nl.constant(true);
  EXPECT_EQ(c0a, c0b);
  EXPECT_FALSE(c0a == c1);
  EXPECT_EQ(nl.gateCount(), 2u);
}

TEST(NetlistTest, TopologicalOrderRespectsDependencies) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId x = nl.gate1(GateKind::Inv, a);
  const NetId y = nl.gate1(GateKind::Inv, x);
  const NetId z = nl.gate2(GateKind::And2, x, y);
  nl.output("z", z);

  const auto order = nl.topologicalOrder();
  ASSERT_EQ(order.size(), 3u);
  std::vector<std::uint32_t> position(nl.gateCount());
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    position[order[i].value] = i;
  }
  // gate 0 (x) before gate 1 (y) before gate 2 (z).
  EXPECT_LT(position[0], position[1]);
  EXPECT_LT(position[1], position[2]);
}

TEST(NetlistTest, FanoutCountsIncludeOutputs) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId x = nl.gate1(GateKind::Inv, a);
  (void)nl.gate1(GateKind::Inv, x);
  (void)nl.gate1(GateKind::Buf, x);
  nl.output("x", x);

  const auto counts = nl.fanoutCounts();
  EXPECT_EQ(counts[a.value], 1u);
  EXPECT_EQ(counts[x.value], 3u);  // two readers + primary output
}

TEST(NetlistTest, HistogramCountsKinds) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  (void)nl.gate2(GateKind::And2, a, b);
  (void)nl.gate2(GateKind::And2, b, a);
  (void)nl.gate1(GateKind::Inv, a);
  const auto hist = nl.histogram();
  EXPECT_EQ(hist.of(GateKind::And2), 2u);
  EXPECT_EQ(hist.of(GateKind::Inv), 1u);
  EXPECT_EQ(hist.total(), 3u);
}

TEST(EvaluatorTest, RejectsWrongInputCount) {
  Netlist nl;
  (void)nl.input("a");
  const Evaluator eval(nl);
  const std::vector<std::uint8_t> wrong{1, 0};
  EXPECT_THROW((void)eval.evaluate(wrong), std::invalid_argument);
}

TEST(EvaluatorTest, EvaluateWordPacksPorts) {
  Netlist nl;
  const NetId a = nl.input("a");
  const NetId b = nl.input("b");
  nl.output("x", nl.gate2(GateKind::Xor2, a, b));
  nl.output("y", nl.gate2(GateKind::And2, a, b));
  const Evaluator eval(nl);
  // a=1, b=1 -> xor=0, and=1 -> output word 0b10.
  EXPECT_EQ(eval.evaluateWord(0b11u), 0b10u);
  // a=1, b=0 -> xor=1, and=0 -> output word 0b01.
  EXPECT_EQ(eval.evaluateWord(0b01u), 0b01u);
}

TEST(DotExportTest, ProducesWellFormedDigraph) {
  Netlist nl("demo");
  const NetId a = nl.input("a");
  nl.output("y", nl.gate1(GateKind::Inv, a));
  std::ostringstream os;
  oisa::netlist::writeDot(nl, os);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("INV"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

}  // namespace
