// CprGovernor tests: control-law hysteresis (instant retreat, patient
// advance), ladder clamping at both ends, stats accounting and the
// guardband-reclaimed metric.
#include <gtest/gtest.h>

#include <stdexcept>

#include "timing/cpr_governor.h"

namespace {

using oisa::timing::CprGovernor;
using oisa::timing::CprGovernorConfig;

CprGovernorConfig ladderConfig() {
  CprGovernorConfig config;
  config.cprLevels = {0.0, 5.0, 10.0, 15.0};
  config.signOffPeriodNs = 0.3;
  config.targetFlipRate = 1e-2;
  config.stepUpFraction = 0.5;
  config.holdWindows = 2;
  return config;
}

TEST(CprGovernorTest, RejectsMalformedConfigs) {
  auto bad = ladderConfig();
  bad.cprLevels.clear();
  EXPECT_THROW(CprGovernor{bad}, std::invalid_argument);
  bad = ladderConfig();
  bad.cprLevels = {10.0, 5.0};
  EXPECT_THROW(CprGovernor{bad}, std::invalid_argument);
  bad = ladderConfig();
  bad.cprLevels = {0.0, 100.0};
  EXPECT_THROW(CprGovernor{bad}, std::invalid_argument);
  bad = ladderConfig();
  bad.targetFlipRate = 0.0;
  EXPECT_THROW(CprGovernor{bad}, std::invalid_argument);
  bad = ladderConfig();
  bad.stepUpFraction = 1.0;
  EXPECT_THROW(CprGovernor{bad}, std::invalid_argument);
  bad = ladderConfig();
  bad.startLevel = 4;
  EXPECT_THROW(CprGovernor{bad}, std::invalid_argument);
}

TEST(CprGovernorTest, PeriodTracksLadderLevel) {
  CprGovernor governor(ladderConfig());
  EXPECT_EQ(governor.level(), 0u);
  EXPECT_DOUBLE_EQ(governor.cprPercent(), 0.0);
  EXPECT_DOUBLE_EQ(governor.periodNs(), 0.3);
}

TEST(CprGovernorTest, CalmWindowsStepUpAfterHold) {
  CprGovernor governor(ladderConfig());
  // holdWindows = 2: the first calm window arms, the second steps.
  EXPECT_EQ(governor.observe(0.0), CprGovernor::Action::Hold);
  EXPECT_EQ(governor.observe(0.0), CprGovernor::Action::StepUp);
  EXPECT_EQ(governor.level(), 1u);
  EXPECT_DOUBLE_EQ(governor.cprPercent(), 5.0);
  EXPECT_DOUBLE_EQ(governor.periodNs(), 0.3 * 0.95);
}

TEST(CprGovernorTest, OverBudgetStepsDownImmediately) {
  auto config = ladderConfig();
  config.startLevel = 3;
  CprGovernor governor(config);
  EXPECT_EQ(governor.observe(0.5), CprGovernor::Action::StepDown);
  EXPECT_EQ(governor.level(), 2u);
  // One over-budget window outweighs any calm streak in progress.
  EXPECT_EQ(governor.observe(0.0), CprGovernor::Action::Hold);
  EXPECT_EQ(governor.observe(0.5), CprGovernor::Action::StepDown);
  EXPECT_EQ(governor.level(), 1u);
}

TEST(CprGovernorTest, MiddlingRateHoldsAndResetsStreak) {
  CprGovernor governor(ladderConfig());
  // Rate in (target*stepUpFraction, target]: hold, and the calm streak
  // restarts — so the next two calm windows are needed to step.
  EXPECT_EQ(governor.observe(0.0), CprGovernor::Action::Hold);
  EXPECT_EQ(governor.observe(8e-3), CprGovernor::Action::Hold);
  EXPECT_EQ(governor.observe(0.0), CprGovernor::Action::Hold);
  EXPECT_EQ(governor.observe(0.0), CprGovernor::Action::StepUp);
}

TEST(CprGovernorTest, ClampsAtLadderEnds) {
  auto config = ladderConfig();
  config.startLevel = 0;
  CprGovernor bottom(config);
  EXPECT_EQ(bottom.observe(1.0), CprGovernor::Action::Hold);
  EXPECT_EQ(bottom.level(), 0u);

  config.startLevel = 3;
  CprGovernor top(config);
  EXPECT_EQ(top.observe(0.0), CprGovernor::Action::Hold);
  EXPECT_EQ(top.observe(0.0), CprGovernor::Action::Hold);
  EXPECT_EQ(top.level(), 3u);
}

TEST(CprGovernorTest, StatsAccountEveryWindowAtItsLevel) {
  CprGovernor governor(ladderConfig());
  governor.observe(0.0);  // level 0
  governor.observe(0.0);  // level 0, steps up
  governor.observe(0.5);  // level 1, over budget, steps down
  const auto& st = governor.stats();
  EXPECT_EQ(st.windows, 3u);
  EXPECT_EQ(st.stepUps, 1u);
  EXPECT_EQ(st.stepDowns, 1u);
  EXPECT_EQ(st.overBudgetWindows, 1u);
  ASSERT_EQ(st.windowsAtLevel.size(), 4u);
  EXPECT_EQ(st.windowsAtLevel[0], 2u);
  EXPECT_EQ(st.windowsAtLevel[1], 1u);
  const double meanPeriod = (0.3 + 0.3 + 0.3 * 0.95) / 3.0;
  EXPECT_DOUBLE_EQ(st.meanPeriodNs(), meanPeriod);
  EXPECT_DOUBLE_EQ(governor.guardbandReclaimedPercent(),
                   100.0 * (1.0 - meanPeriod / 0.3));
}

TEST(CprGovernorTest, NoWindowsMeansNoGuardbandClaim) {
  CprGovernor governor(ladderConfig());
  EXPECT_DOUBLE_EQ(governor.guardbandReclaimedPercent(), 0.0);
  EXPECT_DOUBLE_EQ(governor.stats().meanPeriodNs(), 0.0);
}

}  // namespace
