// Design-space exploration (the paper's "Design Strategy" section): sweep
// ISA quadruples, characterize structural accuracy (behavioral, fast) and
// circuit cost (STA critical path + area), and print the Pareto frontier of
// accuracy vs delay — how the paper's twelve "best implementations fitting
// 0.3 ns" were chosen from a larger space.
//
// Run: ./design_space [--samples=N] [--target=0.3]
#include <algorithm>
#include <iostream>
#include <random>

#include "circuits/synthesis.h"
#include "core/error_stats.h"
#include "core/isa_adder.h"
#include "experiments/cli.h"
#include "experiments/report.h"

namespace {

struct Candidate {
  oisa::core::IsaConfig cfg;
  double rmsRel = 0.0;
  double criticalNs = 0.0;
  double area = 0.0;
  bool pareto = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);
  const std::uint64_t samples = args.getU64("samples", 200000);
  const double target = args.getDouble("target", 0.3);

  // Candidate space: regular structures like the paper's (2x16, 4x8 blocks).
  std::vector<Candidate> candidates;
  const auto lib = timing::CellLibrary::generic65();
  for (const int block : {8, 16}) {
    for (const int spec : {0, 1, 2, 4, 7}) {
      if (spec > block) continue;
      for (const int corr : {0, 1}) {
        for (const int red : {0, 2, 4, 6, 8}) {
          if (red > block) continue;
          Candidate c;
          c.cfg = core::makeIsa(block, spec, corr, red);

          const core::IsaAdder isa(c.cfg);
          core::ErrorStats rel;
          std::mt19937_64 rng(42);
          for (std::uint64_t i = 0; i < samples; ++i) {
            const std::uint64_t a = rng() & 0xffffffffull;
            const std::uint64_t b = rng() & 0xffffffffull;
            const auto diamond = isa.exactAdd(a, b).sum;
            if (diamond == 0) continue;
            rel.add(static_cast<double>(isa.structuralError(a, b)) /
                    static_cast<double>(diamond));
          }
          c.rmsRel = rel.rms();

          circuits::SynthesisOptions synth;
          synth.targetPeriodNs = target;
          const auto design = circuits::synthesize(c.cfg, lib, synth);
          c.criticalNs = design.criticalDelayNs;
          c.area = design.areaNand2;
          candidates.push_back(c);
        }
      }
    }
  }

  // Pareto frontier on (rmsRel, criticalNs), both minimized.
  for (Candidate& c : candidates) {
    c.pareto = std::none_of(
        candidates.begin(), candidates.end(), [&](const Candidate& o) {
          return (o.rmsRel < c.rmsRel && o.criticalNs <= c.criticalNs) ||
                 (o.rmsRel <= c.rmsRel && o.criticalNs < c.criticalNs);
        });
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              return x.rmsRel < y.rmsRel;
            });

  std::cout << "== ISA design space (" << candidates.size()
            << " candidates, " << samples << " samples each, target "
            << target << " ns) ==\n\n";
  experiments::Table table({"design", "rms-rel-err[%]", "critical[ns]",
                            "area[NAND2]", "pareto"});
  for (const Candidate& c : candidates) {
    table.addRow({c.cfg.name(),
                  experiments::formatSci(
                      experiments::displayFloor(c.rmsRel * 100.0), 3),
                  experiments::formatFixed(c.criticalNs, 4),
                  experiments::formatFixed(c.area, 0),
                  c.pareto ? "*" : ""});
  }
  table.print(std::cout);
  std::cout << "\n'*' marks the accuracy-delay Pareto frontier.\n";
  return 0;
}
