// Adaptive overclocking guided by the bit-level timing-error model — the
// application the prediction line of work targets (paper refs [4], [13],
// [15]): instead of one conservative clock, the controller picks, per
// input pair, the deepest clock-period reduction whose model predicts a
// clean (or low-significance) result, reclaiming guardband without the
// Razor-style replay hardware.
//
// Run: ./adaptive_overclocking [--block=16] [--spec=2] [--corr=0] [--red=4]
//        [--train-cycles=N] [--eval-cycles=N] [--threshold-bit=8]
#include <iostream>

#include "core/error_model.h"
#include "experiments/cli.h"
#include "experiments/report.h"
#include "experiments/trace_collector.h"
#include "predict/bit_predictor.h"

int main(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);
  const core::IsaConfig cfg =
      core::makeIsa(static_cast<int>(args.getU64("block", 16)),
                    static_cast<int>(args.getU64("spec", 2)),
                    static_cast<int>(args.getU64("corr", 0)),
                    static_cast<int>(args.getU64("red", 4)));
  const std::uint64_t trainCycles = args.getU64("train-cycles", 8000);
  const std::uint64_t evalCycles = args.getU64("eval-cycles", 4000);
  // Predicted flips strictly below this bit are accepted as "harmless".
  const int thresholdBit = static_cast<int>(args.getU64("threshold-bit", 8));

  circuits::SynthesisOptions synth;
  synth.relaxSlack = true;
  const auto design = circuits::synthesize(
      cfg, timing::CellLibrary::generic65(), synth);
  const std::vector<double> cprs = {15.0, 10.0, 5.0};  // deepest first

  std::cout << "== Adaptive overclocking of " << cfg.name()
            << " (critical " << design.criticalDelayNs << " ns) ==\n\n";

  // Train one predictor per candidate clock.
  std::vector<predict::BitLevelPredictor> predictors;
  for (const double cpr : cprs) {
    auto workload = experiments::makeWorkload("uniform", 32, 100 + static_cast<std::uint64_t>(cpr));
    const auto trace = experiments::collectTrace(
        design, experiments::overclockedPeriodNs(0.3, cpr), *workload,
        trainCycles);
    predict::BitLevelPredictor predictor(32);
    predictor.fit(trace);
    predictors.push_back(std::move(predictor));
    std::cout << "trained model @ " << cpr << "% CPR\n";
  }

  // Evaluation: run all clocks in lock-step on the same stimulus; per
  // cycle the controller picks the deepest clock whose prediction is
  // acceptable. (Hardware would switch a clock mux; here we read the
  // corresponding trace.)
  std::vector<predict::Trace> traces;
  for (const double cpr : cprs) {
    auto workload = experiments::makeWorkload("uniform", 32, 999);
    traces.push_back(experiments::collectTrace(
        design, experiments::overclockedPeriodNs(0.3, cpr), *workload,
        evalCycles));
  }

  const std::uint64_t harmlessMask = ~((std::uint64_t{1} << thresholdBit) - 1);
  std::vector<std::uint64_t> chosen(cprs.size() + 1, 0);
  core::ErrorCombination adaptive, conservative, static15;
  double periodSum = 0.0;
  for (std::size_t t = 1; t < traces[0].size(); ++t) {
    std::size_t pick = cprs.size();  // sentinel: safe clock (no reduction)
    for (std::size_t c = 0; c < cprs.size(); ++c) {
      const auto flips =
          predictors[c].predictFlips(traces[c][t - 1], traces[c][t]);
      const bool harmful =
          (flips.sumFlips & harmlessMask) != 0 || flips.coutFlip;
      if (!harmful) {
        pick = c;
        break;  // deepest acceptable CPR
      }
    }
    ++chosen[pick];
    const double cpr = pick < cprs.size() ? cprs[pick] : 0.0;
    periodSum += experiments::overclockedPeriodNs(0.3, cpr);

    // Errors actually incurred by the adaptive choice (safe clock = gold).
    const auto& rec = pick < cprs.size() ? traces[pick][t] : traces[0][t];
    const std::uint64_t silver =
        pick < cprs.size() ? rec.silverValue(32) : rec.goldValue(32);
    adaptive.add(core::OutputTriple{rec.diamondValue(32), rec.goldValue(32),
                                    silver});
    conservative.add(core::OutputTriple{rec.diamondValue(32),
                                        rec.goldValue(32),
                                        rec.goldValue(32)});
    const auto& rec15 = traces[0][t];
    static15.add(core::OutputTriple{rec15.diamondValue(32),
                                    rec15.goldValue(32),
                                    rec15.silverValue(32)});
  }

  const double cyclesD = static_cast<double>(traces[0].size() - 1);
  std::cout << "\nclock choices:";
  for (std::size_t c = 0; c < cprs.size(); ++c) {
    std::cout << "  " << cprs[c] << "%: "
              << experiments::formatFixed(
                     100.0 * static_cast<double>(chosen[c]) / cyclesD, 1)
              << "%";
  }
  std::cout << "  safe: "
            << experiments::formatFixed(
                   100.0 * static_cast<double>(chosen[cprs.size()]) / cyclesD,
                   1)
            << "%\n\n";

  experiments::Table table(
      {"policy", "mean period[ns]", "speedup", "joint-rms[%]"});
  auto row = [&](const char* label, double period,
                 const core::ErrorCombination& combo) {
    table.addRow({label, experiments::formatFixed(period, 4),
                  experiments::formatFixed(0.3 / period, 3),
                  experiments::formatSci(experiments::displayFloor(
                      combo.relJoint().rms() * 100.0), 2)});
  };
  row("worst-case clock (0.3 ns)", 0.3, conservative);
  row("static 15% CPR", experiments::overclockedPeriodNs(0.3, 15.0),
      static15);
  row("adaptive (model-guided)", periodSum / cyclesD, adaptive);
  table.print(std::cout);
  std::cout << "\nThe model-guided policy reclaims most of the frequency "
               "gain while avoiding the high-significance timing errors "
               "a static deep overclock incurs.\n";
  return 0;
}
