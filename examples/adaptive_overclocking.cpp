// Adaptive overclocking driven by timing::CprGovernor — the closed loop
// the prediction line of work targets (paper refs [4], [13], [15]):
// instead of one conservative clock, an online governor walks a ladder of
// CPR (clock-period-reduction) levels against a residual-error budget,
// scoring each evaluation window with the flat-bank batch-64
// predictFlipsBlock hot path. No Razor-style replay hardware; the model's
// predicted flip rate IS the feedback signal.
//
// For each budget in a sweep this emits one point of the
// guardband-reclaimed vs residual-error curve: mean clock period,
// guardband reclaimed (the energy/throughput proxy — dynamic power tracks
// f = 1/T), over-budget window fraction, governor step counts, the
// residual joint-RMS error actually incurred, and the controller's own
// overhead in ns per record (it must be negligible next to the cycle it
// governs).
//
// Run: ./adaptive_overclocking [--block=16] [--spec=2] [--corr=0] [--red=4]
//        [--train-cycles=N] [--eval-cycles=N] [--threshold-bit=8]
//        [--window=64] [--hold=4] [--budgets=0.001,0.01,0.05,0.2]
#include <chrono>
#include <cstdint>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/error_model.h"
#include "experiments/cli.h"
#include "experiments/report.h"
#include "experiments/trace_collector.h"
#include "predict/bit_predictor.h"
#include "timing/cpr_governor.h"

namespace {

std::vector<double> parseBudgets(const std::string& csv) {
  std::vector<double> budgets;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) budgets.push_back(std::stod(item));
  }
  return budgets;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oisa;
  using Clock = std::chrono::steady_clock;
  const experiments::ArgParser args(argc, argv);
  const core::IsaConfig cfg =
      core::makeIsa(static_cast<int>(args.getU64("block", 16)),
                    static_cast<int>(args.getU64("spec", 2)),
                    static_cast<int>(args.getU64("corr", 0)),
                    static_cast<int>(args.getU64("red", 4)));
  const std::uint64_t trainCycles = args.getU64("train-cycles", 8000);
  const std::uint64_t evalCycles = args.getU64("eval-cycles", 4000);
  // Predicted flips strictly below this bit are accepted as "harmless".
  const int thresholdBit = static_cast<int>(args.getU64("threshold-bit", 8));
  const std::size_t window = args.getPositiveU64("window", 64);
  const int hold = static_cast<int>(args.getPositiveU64("hold", 4));
  const std::vector<double> budgets =
      parseBudgets(args.getString("budgets", "0.001,0.01,0.05,0.2"));
  constexpr double kSignOffNs = 0.3;

  circuits::SynthesisOptions synth;
  synth.relaxSlack = true;
  const auto design = circuits::synthesize(
      cfg, timing::CellLibrary::generic65(), synth);
  // Governor ladder: sign-off clock plus the paper's CPR sweep, shallow
  // to deep. Ladder index L runs at signOff * (1 - cpr/100).
  const std::vector<double> ladder = {0.0, 5.0, 10.0, 15.0};

  std::cout << "== CprGovernor closed loop on " << cfg.name()
            << " (critical " << design.criticalDelayNs << " ns, sign-off "
            << kSignOffNs << " ns) ==\n\n";

  // One predictor per overclocked ladder level (level 0 = sign-off needs
  // none: no timing errors to predict).
  std::vector<predict::BitLevelPredictor> predictors;
  for (std::size_t l = 1; l < ladder.size(); ++l) {
    auto workload = experiments::makeWorkload(
        "uniform", 32, 100 + static_cast<std::uint64_t>(ladder[l]));
    const auto trace = experiments::collectTrace(
        design, experiments::overclockedPeriodNs(kSignOffNs, ladder[l]),
        *workload, trainCycles);
    predict::BitLevelPredictor predictor(32);
    predictor.fit(trace);
    predictors.push_back(std::move(predictor));
    std::cout << "trained model @ " << ladder[l] << "% CPR\n";
  }

  // Evaluation stimulus: every ladder level runs the same inputs in
  // lock-step (hardware would switch a clock mux; here we read the
  // corresponding trace).
  std::vector<predict::Trace> traces;
  for (std::size_t l = 1; l < ladder.size(); ++l) {
    auto workload = experiments::makeWorkload("uniform", 32, 999);
    traces.push_back(experiments::collectTrace(
        design, experiments::overclockedPeriodNs(kSignOffNs, ladder[l]),
        *workload, evalCycles));
  }
  const std::size_t pairs = traces[0].size() - 1;
  const std::uint64_t harmlessMask = ~((std::uint64_t{1} << thresholdBit) - 1);

  // Static baselines for the curve's endpoints.
  core::ErrorCombination conservative, staticDeep;
  for (std::size_t t = 1; t < traces.back().size(); ++t) {
    const auto& rec = traces.back()[t];
    conservative.add(core::OutputTriple{rec.diamondValue(32),
                                        rec.goldValue(32), rec.goldValue(32)});
    staticDeep.add(core::OutputTriple{rec.diamondValue(32), rec.goldValue(32),
                                      rec.silverValue(32)});
  }

  experiments::Table table({"budget[flips/rec]", "mean period[ns]",
                            "guardband[%]", "speedup", "over-budget[%]",
                            "steps up/down", "joint-rms[%]", "ctrl[ns/rec]"});
  auto addRow = [&](const std::string& label, double period, double guardband,
                    double overBudget, const std::string& steps,
                    const core::ErrorCombination& combo, double ctrlNs) {
    table.addRow({label, experiments::formatFixed(period, 4),
                  experiments::formatFixed(guardband, 1),
                  experiments::formatFixed(kSignOffNs / period, 3),
                  experiments::formatFixed(overBudget, 1), steps,
                  experiments::formatSci(experiments::displayFloor(
                      combo.relJoint().rms() * 100.0), 2),
                  ctrlNs >= 0 ? experiments::formatFixed(ctrlNs, 0) : "-"});
  };
  addRow("static sign-off", kSignOffNs, 0.0, 0.0, "-/-", conservative, -1.0);
  addRow("static 15% CPR",
         experiments::overclockedPeriodNs(kSignOffNs, ladder.back()),
         ladder.back(), 0.0, "-/-", staticDeep, -1.0);

  std::vector<predict::PredictedFlips> flips(window);
  for (const double budget : budgets) {
    timing::CprGovernorConfig gcfg;
    gcfg.cprLevels = ladder;
    gcfg.signOffPeriodNs = kSignOffNs;
    gcfg.targetFlipRate = budget;
    gcfg.holdWindows = hold;
    timing::CprGovernor governor(gcfg);

    core::ErrorCombination residual;
    double ctrlSec = 0.0;
    for (std::size_t base = 0; base < pairs; base += window) {
      const std::size_t n = std::min(window, pairs - base);
      const std::size_t level = governor.level();

      // Score the window with the batch hot path at the level in force,
      // then let the governor pick the next window's clock. Only the
      // prediction + control-law cost is the controller's overhead.
      const auto ctrlStart = Clock::now();
      double rate = 0.0;
      if (level > 0) {
        const std::span<const predict::TraceRecord> recs(traces[level - 1]);
        predictors[level - 1].predictFlipsBlock(
            recs.subspan(base, n + 1), std::span(flips).first(n));
        std::size_t harmful = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if ((flips[i].sumFlips & harmlessMask) != 0 || flips[i].coutFlip) {
            ++harmful;
          }
        }
        rate = static_cast<double>(harmful) / static_cast<double>(n);
      }
      governor.observe(rate);
      ctrlSec += std::chrono::duration<double>(Clock::now() - ctrlStart)
                     .count();

      // Residual errors actually incurred at the level that was in force
      // (sign-off level = golden outputs).
      for (std::size_t i = 0; i < n; ++i) {
        const auto& rec =
            level > 0 ? traces[level - 1][base + i + 1] : traces[0][base + i + 1];
        const std::uint64_t silver =
            level > 0 ? rec.silverValue(32) : rec.goldValue(32);
        residual.add(core::OutputTriple{rec.diamondValue(32),
                                        rec.goldValue(32), silver});
      }
    }

    const auto& st = governor.stats();
    addRow(experiments::formatSci(budget, 1), st.meanPeriodNs(),
           governor.guardbandReclaimedPercent(),
           100.0 * static_cast<double>(st.overBudgetWindows) /
               static_cast<double>(st.windows),
           std::to_string(st.stepUps) + "/" + std::to_string(st.stepDowns),
           residual,
           ctrlSec / static_cast<double>(pairs) * 1e9);
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nEach budget row is one point of the guardband-vs-residual-"
               "error curve: loosening the flip budget lets the governor "
               "sit deeper in the CPR ladder (more guardband reclaimed, "
               "dynamic power tracks the shorter period) at the cost of "
               "residual timing-error RMS; the instant-retreat / patient-"
               "advance hysteresis keeps over-budget windows rare.\n";
  return 0;
}
