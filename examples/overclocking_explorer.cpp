// Overclocking explorer: fine-grained CPR sweep for one design, showing
// where timing errors set in, how they trade against the structural floor,
// and how well the bit-level model tracks them at each point — an
// interactive-style companion to the paper's three fixed CPR points.
//
// Run: ./overclocking_explorer [--block=8] [--spec=0] [--corr=0] [--red=4]
//        [--exact] [--cycles=N] [--max-cpr=20] [--step=2.5] [--predict]
#include <iostream>

#include "experiments/cli.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "experiments/trace_collector.h"
#include "predict/bit_predictor.h"

int main(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);

  const core::IsaConfig cfg =
      args.getBool("exact", false)
          ? core::makeExact(32)
          : core::makeIsa(static_cast<int>(args.getU64("block", 8)),
                          static_cast<int>(args.getU64("spec", 0)),
                          static_cast<int>(args.getU64("corr", 0)),
                          static_cast<int>(args.getU64("red", 4)));
  const std::uint64_t cycles = args.getU64("cycles", 3000);
  const double maxCpr = args.getDouble("max-cpr", 20.0);
  const double step = args.getDouble("step", 2.5);
  const bool predict = args.getBool("predict", false);

  const auto design = circuits::synthesize(
      cfg, timing::CellLibrary::generic65(), circuits::SynthesisOptions{});
  std::cout << "== Overclocking " << cfg.name() << " (critical path "
            << design.criticalDelayNs << " ns, sign-off 0.3 ns) ==\n\n";

  std::vector<double> cprs;
  for (double cpr = 0.0; cpr <= maxCpr + 1e-9; cpr += step) {
    cprs.push_back(cpr);
  }

  experiments::RunOptions options;
  options.cycles = cycles;
  const auto rows = runErrorCombination({design}, cprs, options);

  experiments::Table table({"cpr[%]", "period[ns]", "struct-rms[%]",
                            "timing-rms[%]", "joint-rms[%]", "timing-rate",
                            predict ? "abper" : ""});
  for (const auto& row : rows) {
    std::string abper;
    if (predict) {
      experiments::PredictionOptions popt;
      popt.trainCycles = cycles;
      popt.testCycles = cycles / 2;
      const double one[] = {row.cprPercent};
      const auto evals = runPredictionEvaluation({design}, one, popt);
      abper = experiments::formatSci(
          experiments::displayFloor(evals.front().abper), 2);
    }
    table.addRow(
        {experiments::formatFixed(row.cprPercent, 1),
         experiments::formatFixed(row.periodNs, 4),
         experiments::formatSci(
             experiments::displayFloor(row.rmsRelStruct * 100.0), 2),
         experiments::formatSci(
             experiments::displayFloor(row.rmsRelTiming * 100.0), 2),
         experiments::formatSci(
             experiments::displayFloor(row.rmsRelJoint * 100.0), 2),
         experiments::formatSci(row.timingErrorRate, 2), abper});
  }
  table.print(std::cout);
  std::cout << "\nTiming errors set in once the period undercuts the "
               "sensitized path distribution;\nthe structural floor is "
               "clock-independent.\n";
  return 0;
}
