// Approximate multiplication with ISA row adders (the paper's ref. [9]
// integrated ISA into multiplier/FPU datapaths). Characterizes product
// accuracy per adder configuration and demonstrates an image-kernel use:
// a 2D convolution whose multiplies run on the approximate multiplier.
//
// Run: ./approx_multiplier [--samples=N] [--width=16]
#include <cmath>
#include <iostream>
#include <random>

#include "core/error_stats.h"
#include "core/isa_multiplier.h"
#include "experiments/cli.h"
#include "experiments/report.h"

namespace {

/// 3x3 sharpening kernel applied to a synthetic image; multiplies run on
/// `mul`, accumulation is exact (the common "approximate the multiplier"
/// datapath split).
double kernelPsnr(const oisa::core::IsaMultiplier& mul, int size,
                  std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> image(static_cast<std::size_t>(size * size));
  for (auto& px : image) px = rng() % 256;
  // Gaussian-ish blur; weights are deliberately not powers of two so the
  // multiplier exercises real partial-product additions.
  const int kernel[3][3] = {{1, 3, 1}, {3, 5, 3}, {1, 3, 1}};

  double noise = 0.0;
  std::uint64_t count = 0;
  for (int y = 1; y + 1 < size; ++y) {
    for (int x = 1; x + 1 < size; ++x) {
      std::uint64_t approx = 0, exact = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const std::uint64_t px =
              image[static_cast<std::size_t>((y + dy) * size + (x + dx))];
          const auto w =
              static_cast<std::uint64_t>(kernel[dy + 1][dx + 1]);
          approx += mul.multiply(px, w);
          exact += px * w;
        }
      }
      const double e = (static_cast<double>(approx) -
                        static_cast<double>(exact)) /
                       21.0;  // kernel weight sum
      noise += e * e;
      ++count;
    }
  }
  const double mse = noise / static_cast<double>(count);
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);
  const std::uint64_t samples = args.getU64("samples", 100000);
  const int width = static_cast<int>(args.getU64("width", 16));

  std::cout << "== ISA-based " << width << "x" << width
            << " approximate multiplier ==\n\n";
  experiments::Table table({"row adder", "err-rate", "mean|err|",
                            "rms-rel-err[%]", "kernel PSNR[dB]"});

  struct Point {
    const char* label;
    core::MultiplierConfig cfg;
  };
  const Point points[] = {
      {"exact", core::MultiplierConfig::makeExact(width)},
      {"(8,0,0,0)", core::MultiplierConfig::make(width, 8, 0, 0, 0)},
      {"(8,0,0,4)", core::MultiplierConfig::make(width, 8, 0, 0, 4)},
      {"(8,2,1,4)", core::MultiplierConfig::make(width, 8, 2, 1, 4)},
      {"(16,2,1,6)", core::MultiplierConfig::make(width, 16, 2, 1, 6)},
      {"(16,7,0,8)", core::MultiplierConfig::make(width, 16, 7, 0, 8)},
  };

  std::mt19937_64 rng(17);
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  for (const Point& point : points) {
    const core::IsaMultiplier mul(point.cfg);
    core::ErrorStats abs, rel;
    for (std::uint64_t i = 0; i < samples; ++i) {
      const std::uint64_t a = rng() & mask;
      const std::uint64_t b = rng() & mask;
      const auto e = static_cast<double>(mul.structuralError(a, b));
      abs.add(e);
      const std::uint64_t exact = mul.exactMultiply(a, b);
      if (exact != 0) rel.add(e / static_cast<double>(exact));
    }
    const double psnr = kernelPsnr(mul, 64, 23);
    table.addRow({point.label,
                  experiments::formatSci(abs.errorRate(), 2),
                  experiments::formatFixed(abs.meanAbs(), 1),
                  experiments::formatSci(
                      experiments::displayFloor(rel.rms() * 100.0), 2),
                  std::isinf(psnr) ? "inf"
                                   : experiments::formatFixed(psnr, 1)});
  }
  table.print(std::cout);
  std::cout << "\nThe compensation mechanisms carry over from adders to "
               "multipliers: more reduction/correction, higher PSNR.\n";
  return 0;
}
