// Walkthrough: stuck-at fault simulation on the compiled-netlist
// substrate, end to end —
//
//   1. import the ISCAS-85 c17 benchmark from its .bench text,
//   2. enumerate and collapse the stuck-at universe,
//   3. run an exhaustive PPSFP coverage campaign (64 patterns/sweep),
//   4. clamp one defect into the 64-lane timed engine and watch the
//      defective circuit's outputs diverge from the healthy machine.
//
// Usage: fault_injection
#include <bit>
#include <iostream>

#include "fault/coverage.h"
#include "fault/fault_universe.h"
#include "fault/ppsfp.h"
#include "fault/serial_fault_sim.h"
#include "fault/timed_fault.h"
#include "netlist/bench_io.h"
#include "netlist/compiled_netlist.h"
#include "netlist/gate.h"
#include "timing/cell_library.h"
#include "timing/delay_annotation.h"
#include "timing/lane_sim.h"

namespace {

constexpr const char* kC17 = R"(
# ISCAS-85 c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

}  // namespace

int main() {
  using namespace oisa;

  // 1. Import.
  const netlist::Netlist nl = netlist::readBenchString(kC17, "c17");
  std::cout << "imported " << nl.name() << ": "
            << nl.primaryInputs().size() << " inputs, "
            << nl.primaryOutputs().size() << " outputs, " << nl.gateCount()
            << " NAND gates\n";

  // 2. Fault universe. One compile is shared by every engine below.
  const auto compiled = netlist::CompiledNetlist::compile(nl);
  fault::FaultUniverse universe(compiled);
  std::cout << "fault universe: " << universe.all().size()
            << " stuck-at faults (stems + fanout branches), collapsed to "
            << universe.collapsed().size() << " equivalence classes\n\n";

  // 3. Exhaustive coverage: c17 has 5 inputs, so all 32 patterns fit in
  // half of one 64-lane block.
  fault::PpsfpEngine engine(compiled);
  fault::CoverageOptions options;
  options.patterns = 32;
  bool served = false;
  const auto coverage = fault::runCoverage(
      universe, engine, options,
      [&](std::span<std::uint64_t> words) -> std::size_t {
        if (served) return 0;
        served = true;
        std::fill(words.begin(), words.end(), 0);
        for (std::uint64_t p = 0; p < 32; ++p) {
          for (std::size_t i = 0; i < words.size(); ++i) {
            words[i] |= ((p >> i) & 1u) << p;
          }
        }
        return 32;
      });
  std::cout << "exhaustive campaign: " << coverage.detectedClasses << "/"
            << coverage.collapsedClasses << " classes detected ("
            << coverage.coverage() * 100.0 << "% — c17 is fully testable)\n";

  // Show the classic per-fault detail for one fault: net 11 stuck at 1.
  fault::Fault sample;
  for (const fault::Fault& f : universe.collapsed()) {
    if (compiled->source().net(netlist::NetId{f.net}).name == "11" &&
        f.stuck == fault::StuckAt::SA1 && f.isStem()) {
      sample = f;
    }
  }
  std::vector<std::uint64_t> words(5, 0);
  for (std::uint64_t p = 0; p < 32; ++p) {
    for (std::size_t i = 0; i < 5; ++i) words[i] |= ((p >> i) & 1u) << p;
  }
  engine.loadPatterns(words, 32);
  const std::uint64_t lanes = engine.detectLanes(sample);
  std::cout << "fault " << fault::describeFault(*compiled, sample)
            << " is detected by " << std::popcount(lanes)
            << " of 32 exhaustive patterns\n\n";

  // 4. Timed injection: clamp the same defect into the 64-lane timed
  // engine (unit delays, relaxed period so everything settles) and
  // compare a defective lane against a healthy lane on one test pattern.
  timing::CellLibrary lib;
  for (const netlist::GateKind kind : netlist::allGateKinds()) {
    lib.cell(kind) = timing::CellTiming{0.05, 0.0, 0.02};
  }
  const timing::DelayAnnotation delays(nl, lib);
  timing::LaneClockedSampler sampler(compiled, delays, 2.0);
  // Defect only in the low 32 lanes; the high 32 stay healthy, so one
  // sweep simulates the defective and the golden machine side by side.
  fault::injectStuckAt(sampler.simulator(), sample, 0xffffffffull);

  // Drive every lane with the first pattern that detects the fault.
  const auto firstLane =
      static_cast<std::uint64_t>(std::countr_zero(lanes));
  std::vector<std::uint64_t> stim(5);
  for (std::size_t i = 0; i < 5; ++i) {
    stim[i] = ((words[i] >> firstLane) & 1u) ? ~std::uint64_t{0} : 0;
  }
  sampler.initialize(stim);
  std::vector<std::uint64_t> out;
  sampler.stepInto(stim, out);
  std::cout << "timed engine, pattern #" << firstLane
            << " on every lane, defect clamped in lanes 0-31:\n";
  for (std::size_t o = 0; o < out.size(); ++o) {
    std::cout << "  output " << nl.outputName(o) << ": defective lane -> "
              << (out[o] & 1u) << ", healthy lane -> "
              << ((out[o] >> 63) & 1u) << "\n";
  }
  std::cout << "\nthe defective lanes sample "
            << ((out[0] ^ (out[0] >> 63)) & 1u ? "different" : "identical")
            << " values — the defect is live in the timed waveform.\n";
  return 0;
}
