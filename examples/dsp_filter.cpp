// DSP scenario from the paper's motivation: multimedia-style processing is
// resilient to adder approximation. A moving-average filter smooths a noisy
// synthetic sensor signal; its accumulator additions run on each ISA design
// (optionally overclocked at the gate level), and output quality is
// reported as SNR against the exact-adder filter — directly exercising the
// paper's claim that relative-error RMS is proportional to SNR loss.
//
// Run: ./dsp_filter [--samples=N] [--window=8] [--cpr=0|5|10|15]
#include <algorithm>
#include <cmath>
#include <iostream>
#include <numbers>
#include <random>
#include <vector>

#include "circuits/synthesis.h"
#include "core/isa_adder.h"
#include "experiments/cli.h"
#include "experiments/report.h"
#include "experiments/trace_collector.h"
#include "timing/event_sim.h"

namespace {

/// Synthetic 16-bit unsigned sensor signal: two tones plus Gaussian noise.
std::vector<std::uint64_t> makeSignal(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, 600.0);
  std::vector<std::uint64_t> signal(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    const double clean = 20000.0 +
                         8000.0 * std::sin(2.0 * std::numbers::pi * t / 64.0) +
                         3000.0 * std::sin(2.0 * std::numbers::pi * t / 17.0);
    const double v = std::clamp(clean + noise(rng), 0.0, 65535.0);
    signal[i] = static_cast<std::uint64_t>(v);
  }
  return signal;
}

/// Moving-average filter whose accumulator runs on `add`. Samples are
/// pre-scaled into the adder's upper dynamic range (as a fixed-point DSP
/// datapath would be framed) so the 32-bit approximate adders operate at
/// the operand magnitudes the paper characterizes.
inline constexpr int kFixedPointShift = 13;

template <typename AddFn>
std::vector<double> filterWith(const std::vector<std::uint64_t>& signal,
                               std::size_t window, AddFn&& add) {
  std::vector<double> out;
  out.reserve(signal.size());
  for (std::size_t i = 0; i + window <= signal.size(); ++i) {
    std::uint64_t acc = 0;
    for (std::size_t j = 0; j < window; ++j) {
      acc = add(acc, signal[i + j] << kFixedPointShift);
    }
    out.push_back(static_cast<double>(acc >> kFixedPointShift) /
                  static_cast<double>(window));
  }
  return out;
}

double snrDb(const std::vector<double>& reference,
             const std::vector<double>& approximate) {
  double signal = 0.0, error = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    signal += reference[i] * reference[i];
    const double e = approximate[i] - reference[i];
    error += e * e;
  }
  if (error == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(signal / error);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);
  const std::size_t samples = args.getU64("samples", 4000);
  const std::size_t window = args.getU64("window", 8);
  const double cpr = args.getDouble("cpr", 0.0);

  const auto signal = makeSignal(samples, 9);
  const core::IsaAdder exact(core::makeExact(32));
  const auto reference = filterWith(
      signal, window,
      [&](std::uint64_t x, std::uint64_t y) { return exact.add(x, y).sum; });

  std::cout << "== Moving-average filter (window " << window << ", "
            << samples << " samples) on ISA accumulators";
  if (cpr > 0.0) std::cout << " overclocked at " << cpr << "% CPR";
  std::cout << " ==\n\n";

  experiments::Table table({"design", "SNR[dB]", "mean|err|", "max|err|"});
  for (const auto& cfg : core::paperDesigns()) {
    std::vector<double> filtered;
    if (cpr <= 0.0) {
      const core::IsaAdder isa(cfg);
      filtered = filterWith(signal, window,
                            [&](std::uint64_t x, std::uint64_t y) {
                              return isa.add(x, y).sum;
                            });
    } else {
      // Gate-level accumulator at the reduced clock period.
      const auto design = circuits::synthesize(
          cfg, timing::CellLibrary::generic65(),
          circuits::SynthesisOptions{});
      timing::ClockedSampler sampler(
          design.netlist, design.delays,
          experiments::overclockedPeriodNs(0.3, cpr));
      sampler.initialize(circuits::packOperands(0, 0, false, 32));
      filtered = filterWith(
          signal, window, [&](std::uint64_t x, std::uint64_t y) {
            const auto out =
                sampler.step(circuits::packOperands(x, y, false, 32));
            return circuits::unpackSum(out, 32);
          });
    }
    double meanErr = 0.0, maxErr = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const double e = std::abs(filtered[i] - reference[i]);
      meanErr += e;
      maxErr = std::max(maxErr, e);
    }
    meanErr /= static_cast<double>(reference.size());
    const double snr = snrDb(reference, filtered);
    table.addRow({cfg.name(),
                  std::isinf(snr) ? "inf" : experiments::formatFixed(snr, 1),
                  experiments::formatFixed(meanErr, 2),
                  experiments::formatFixed(maxErr, 0)});
  }
  table.print(std::cout);
  std::cout << "\nHigher SNR = closer to the exact-adder filter output.\n";
  return 0;
}
