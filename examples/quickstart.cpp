// Quickstart: build an Inexact Speculative Adder, add numbers, inspect the
// compensation machinery, synthesize its gate-level netlist, overclock it,
// and decompose the resulting errors exactly as the paper does.
//
// Run: ./quickstart
#include <iostream>

#include "circuits/synthesis.h"
#include "core/error_model.h"
#include "core/isa_adder.h"
#include "experiments/trace_collector.h"
#include "experiments/workload.h"
#include "timing/sta.h"

int main() {
  using namespace oisa;

  // 1. A design point in the paper's quadruple notation:
  //    8-bit blocks, no speculation window, 1-bit correction, 4-bit
  //    error reduction, on 32 bits.
  const core::IsaConfig cfg = core::makeIsa(8, 0, 1, 4);
  const core::IsaAdder isa(cfg);
  std::cout << "design " << cfg.name() << " with " << cfg.pathCount()
            << " speculative paths\n\n";

  // 2. Behavioral addition: y_gold vs the exact y_diamond.
  const std::uint64_t a = 0x0badf00d, b = 0x00ff01f3;
  const core::IsaSum gold = isa.add(a, b);
  const core::IsaSum diamond = isa.exactAdd(a, b);
  std::cout << std::hex << "a        = 0x" << a << "\nb        = 0x" << b
            << "\ny_gold   = 0x" << gold.sum << "\ny_diamond= 0x"
            << diamond.sum << std::dec << "\nE_struct = "
            << isa.structuralError(a, b) << "\n\n";

  // 3. Inspect the per-path compensation decisions.
  std::vector<core::PathTrace> traces;
  (void)isa.addTraced(a, b, false, traces);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    std::cout << "path " << i << ": spec=" << traces[i].specCarry
              << " actual-carry-in=" << traces[i].trueCarryIn
              << " fault=" << traces[i].faultDirection
              << " corrected=" << traces[i].corrected
              << " balanced-prev=" << traces[i].balanced << "\n";
  }

  // 4. The paper's Fig. 4 / Fig. 5 error combination arithmetic.
  std::cout << "\nerror combination (paper Figs. 4-5):\n";
  for (const auto& triple :
       {core::OutputTriple{8, 6, 4}, core::OutputTriple{8, 6, 7}}) {
    const core::ErrorSample s = core::decomposeErrors(triple);
    std::cout << "  diamond=" << triple.diamond << " gold=" << triple.gold
              << " silver=" << triple.silver << " -> RE_struct="
              << *s.reStruct << " RE_timing=" << *s.reTiming
              << " RE_joint=" << *s.reJoint << "\n";
  }

  // 5. Synthesize to gates at the paper's 0.3 ns constraint.
  const auto design = circuits::synthesize(
      cfg, timing::CellLibrary::generic65(), circuits::SynthesisOptions{});
  std::cout << "\nsynthesized with " << circuits::topologyName(design.topology)
            << " sub-adders: " << design.netlist.gateCount() << " gates, "
            << design.criticalDelayNs << " ns critical path ("
            << (design.meetsTiming ? "meets" : "MISSES") << " 0.3 ns)\n";

  // 6. Overclock by 15% and decompose errors over a short random run.
  experiments::UniformWorkload workload(32, /*seed=*/7);
  const auto trace = experiments::collectTrace(
      design, experiments::overclockedPeriodNs(0.3, 15.0), workload, 2000);
  core::ErrorCombination combo;
  for (const auto& rec : trace) {
    combo.add(core::OutputTriple{rec.diamondValue(32), rec.goldValue(32),
                                 rec.silverValue(32)});
  }
  std::cout << "\n15% CPR over 2000 random cycles:\n"
            << "  RE RMS structural = " << combo.relStruct().rms() * 100
            << " %\n  RE RMS timing     = " << combo.relTiming().rms() * 100
            << " %\n  RE RMS joint      = " << combo.relJoint().rms() * 100
            << " %\n";
  return 0;
}
