// Raw data-plane throughput of the LaneBlock<W> batch evaluator across
// every lane width this build + CPU can run: the 64-lane uint64 reference
// against the 256-lane (AVX2) and 512-lane (AVX-512) variants selected by
// the runtime dispatcher (netlist/lane_width.h). The acceptance gate for
// the SIMD substrate is >= 2x gate-evaluation throughput at W=256 over
// W=64 (--min-speedup=2 in CI); wider variants are reported alongside.
//
// Self-checking: before any timing is reported, every wide variant must
// reproduce the 64-lane reference bit-for-bit on the same stimulus —
// sub-word j of a wide net is lanes [64j, 64j + 64), so slicing at a
// stride is the whole comparison (tests/lane_width_test.cpp carries the
// exhaustive differential suite; this is the smoke version).
//
// Usage: micro_simd [--iters=N] [--check-iters=N] [--min-speedup=X]
//                   [--json=path]
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <random>
#include <vector>

#include "circuits/synthesis.h"
#include "core/isa_config.h"
#include "experiments/cli.h"
#include "netlist/compiled_netlist.h"
#include "netlist/lane_width.h"
#include "timing/cell_library.h"

#include "bench_common.h"

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// A pool of pre-drawn stimulus planes so the timed loop measures gate
// evaluation, not RNG. Plane p for a k-words-per-net variant is the
// 1-word plane repeated k times per input: every 64-lane sub-block of the
// wide run carries the same stimulus as reference iteration p, which is
// what makes the checksum comparable across widths.
std::vector<std::uint64_t> stimulusPool(std::size_t inputCount,
                                        std::size_t planes,
                                        std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> pool(inputCount * planes);
  for (auto& w : pool) w = rng();
  return pool;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);
  const std::uint64_t iters = args.getU64("iters", 20000);
  const std::uint64_t checkIters =
      args.getU64("check-iters", std::min<std::uint64_t>(iters, 256));
  const double minSpeedup = args.getDouble("min-speedup", 0.0);
  constexpr std::size_t kPlanes = 64;

  circuits::SynthesisOptions synth;
  synth.relaxSlack = true;
  const auto design = circuits::synthesize(
      core::makeIsa(8, 2, 1, 4), timing::CellLibrary::generic65(), synth);
  const auto compiled = netlist::CompiledNetlist::compile(design.netlist);
  const std::size_t inputs = compiled->inputNets().size();
  const std::size_t gates = design.netlist.gateCount();
  const auto pool = stimulusPool(inputs, kPlanes, 99);

  const netlist::LaneSelection reference{64, netlist::LaneArch::Portable};
  const auto selections = netlist::availableLaneSelections();
  std::cout << "design:  " << design.config.name() << "  (" << gates
            << " gates, " << inputs << " inputs)\niters:   " << iters
            << " block evaluations per variant\nvariants:";
  for (const auto sel : selections) {
    std::cout << ' ' << netlist::laneSelectionName(sel);
  }
  std::cout << "\n\n";

  // Correctness gate: every variant, same stimulus, identical output words
  // in every 64-lane sub-block.
  const auto refEval = netlist::makeBatchEvaluator(compiled, reference);
  {
    std::vector<std::uint64_t> refOut;
    std::vector<std::uint64_t> wideOut;
    std::vector<std::uint64_t> wideIn;
    for (const auto sel : selections) {
      const auto eval = netlist::makeBatchEvaluator(compiled, sel);
      const std::size_t kW = eval->wordsPerNet();
      for (std::uint64_t it = 0; it < checkIters; ++it) {
        const std::uint64_t* plane = pool.data() + (it % kPlanes) * inputs;
        refEval->evaluateOutputsInto({plane, inputs}, refOut);
        wideIn.assign(inputs * kW, 0);
        for (std::size_t i = 0; i < inputs; ++i) {
          for (std::size_t j = 0; j < kW; ++j) wideIn[i * kW + j] = plane[i];
        }
        eval->evaluateOutputsInto(wideIn, wideOut);
        for (std::size_t o = 0; o < refOut.size(); ++o) {
          for (std::size_t j = 0; j < kW; ++j) {
            if (wideOut[o * kW + j] != refOut[o]) {
              std::cerr << "MISMATCH: " << netlist::laneSelectionName(sel)
                        << " output " << o << " sub-word " << j
                        << " diverges from the 64-lane reference at "
                        << "iteration " << it << "\n";
              return EXIT_FAILURE;
            }
          }
        }
      }
    }
  }

  // Timed runs: gate-evaluations/sec = gates * lanes * iters / seconds.
  bench::BenchJson json("micro_simd");
  json.add("design", design.config.name())
      .add("gates", static_cast<std::uint64_t>(gates))
      .add("iters", iters);
  double refRate = 0.0;
  double rate256 = 0.0;
  std::uint64_t refChecksum = 0;
  for (const auto sel : selections) {
    const auto eval = netlist::makeBatchEvaluator(compiled, sel);
    const std::size_t kW = eval->wordsPerNet();
    std::vector<std::uint64_t> wideIn(inputs * kW);
    std::vector<std::uint64_t> out;
    std::uint64_t checksum = 0;
    const auto start = Clock::now();
    for (std::uint64_t it = 0; it < iters; ++it) {
      const std::uint64_t* plane = pool.data() + (it % kPlanes) * inputs;
      for (std::size_t i = 0; i < inputs; ++i) {
        for (std::size_t j = 0; j < kW; ++j) wideIn[i * kW + j] = plane[i];
      }
      eval->evaluateOutputsInto(wideIn, out);
      for (std::size_t o = 0; o < out.size(); o += kW) checksum += out[o];
    }
    const double sec = secondsSince(start);
    if (sel == reference) {
      refChecksum = checksum;
    } else if (checksum != refChecksum) {
      // Sub-word 0 of every output sees the reference stimulus, so the
      // folded checksum must agree exactly across variants.
      std::cerr << "MISMATCH: timed " << netlist::laneSelectionName(sel)
                << " checksum diverges from the reference\n";
      return EXIT_FAILURE;
    }
    const double rate =
        static_cast<double>(iters) * static_cast<double>(gates) *
        static_cast<double>(eval->lanes()) / sec;
    if (sel == reference) refRate = rate;
    if (sel.width == 256 && sel.arch != netlist::LaneArch::Portable) {
      rate256 = rate;
    }
    const std::string name = netlist::laneSelectionName(sel);
    std::cout << name << ":  " << sec << " s  (" << rate / 1e9
              << " Ggate-evals/s, " << (refRate > 0 ? rate / refRate : 1.0)
              << "x vs 64)\n";
    json.add("geps_" + name, rate);
  }

  // Headline + CI gate: the 256-lane vector variant against the 64-lane
  // reference. Without AVX2 in the build/CPU there is nothing to gate —
  // report 0 and let CI skip the assertion on such hosts.
  const double speedup = refRate > 0 && rate256 > 0 ? rate256 / refRate : 0.0;
  std::cout << "\nspeedup (256 vs 64): " << speedup << "x\n";
  json.add("ref_gate_evals_per_sec", refRate);
  return bench::finishSpeedupBench(json, args, speedup, minSpeedup);
}
