// Fig. 8: average value-level predictive error (AVPE) — the arithmetic
// impact of timing-class mispredictions: the model's timing-class vector is
// turned into a predicted y_silver (y_gold with the predicted flips) and
// compared against the real overclocked output.
//
// Usage: fig8_avpe [--train-cycles=N] [--test-cycles=N] [--trees=T]
//                  [--seed=S] [--relax] [--threads=N] [--checkpoint=path]
//                  [--resume] [--checkpoint-every=N] [--retries=N]
//                  [--deadline=S] [--progress] [--shards=N]
//                  [--shard-strikes=K] [--shard-timeout=S] [--csv=path]
//                  [--model-out=base] [--model-in=base]
//                  [--trace-out=f] [--metrics-out=f] [--events-out=f]
#include "experiments/runner.h"

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace oisa;
  return bench::runGuarded([&]() -> int {
  const experiments::ArgParser args(argc, argv);
  const auto obsCtx = bench::beginObs(args);
  const auto designs = bench::synthesizeAll(args);

  experiments::PredictionOptions options;
  options.trainCycles = args.getU64("train-cycles", 6000);
  options.testCycles = args.getU64("test-cycles", 3000);
  options.run.seed = args.getU64("seed", 42);
  options.run.threads = bench::threadsOption(args);
  bench::applyRobustnessOptions(args, options.run);
  options.predictor.forest.treeCount = args.getU64("trees", 10);
  bench::applyModelOptions(args, options);
  const auto shard = bench::setupSharding(
      args, argv[0], options.run,
      designs.size() * bench::paperCprs().size());

  const auto rows =
      runPredictionEvaluation(designs, bench::paperCprs(), options);
  bench::writeObsArtifacts(obsCtx, shard);
  if (!shard.emitOutput) return 0;  // worker: the supervisor prints

  std::cout << "== Fig. 8: AVPE of the bit-level timing-error model ==\n\n";
  experiments::Table table(
      {"design", "0.255ns(15%)", "0.27ns(10%)", "0.285ns(5%)"});
  for (const auto& design : designs) {
    std::string cells[3];
    for (const auto& row : rows) {
      if (row.design != design.config.name()) continue;
      const std::string value =
          experiments::formatSci(experiments::displayFloor(row.avpe), 3);
      if (row.cprPercent == 15.0) cells[0] = value;
      if (row.cprPercent == 10.0) cells[1] = value;
      if (row.cprPercent == 5.0) cells[2] = value;
    }
    table.addRow({design.config.name(), cells[0], cells[1], cells[2]});
  }
  bench::emit(table, args);
  bench::printShardReport(shard);
  return 0;
  });
}
