// Fig. 9 (a,b,c): relative-error RMS of the twelve designs under 5, 10 and
// 15% clock-period reduction, split into structural, timing and joint
// contributions. Values are percentages (the paper's y-axis), floored at
// 1e-6% for log-scale display like the paper's figures.
//
// Usage: fig9_error_combination [--cycles=N] [--seed=S] [--relax]
//                               [--workload=uniform] [--threads=N]
//                               [--checkpoint=path] [--resume]
//                               [--checkpoint-every=N] [--retries=N]
//                               [--deadline=S] [--progress]
//                               [--shards=N] [--shard-strikes=K]
//                               [--shard-timeout=S] [--csv=path]
//                               [--trace-out=f] [--metrics-out=f]
//                               [--events-out=f]
#include "experiments/runner.h"
#include "experiments/trace_collector.h"

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace oisa;
  return bench::runGuarded([&]() -> int {
  const experiments::ArgParser args(argc, argv);
  const auto obsCtx = bench::beginObs(args);
  const auto designs = bench::synthesizeAll(args);

  experiments::RunOptions options;
  options.cycles = args.getU64("cycles", 20000);
  options.seed = args.getU64("seed", 42);
  options.threads = bench::threadsOption(args);
  options.workload = args.getString("workload", "uniform");
  bench::applyRobustnessOptions(args, options);
  const auto shard = bench::setupSharding(
      args, argv[0], options, designs.size() * bench::paperCprs().size());

  const auto rows =
      runErrorCombination(designs, bench::paperCprs(), options);
  bench::writeObsArtifacts(obsCtx, shard);
  if (!shard.emitOutput) return 0;  // worker: the supervisor prints

  std::cout << "== Fig. 9: relative error RMS (%) under overclocking ==\n"
            << "(cycles per point: " << options.cycles
            << "; paper used 10M uniform random inputs)\n\n";
  for (const double cpr : bench::paperCprs()) {
    std::cout << "--- Fig. 9 @ " << cpr << "% CPR (period "
              << experiments::formatFixed(
                     experiments::overclockedPeriodNs(0.3, cpr), 4)
              << " ns) ---\n";
    experiments::Table table({"design", "structural[%]", "timing[%]",
                              "joint[%]", "timing-err-rate"});
    for (const auto& row : rows) {
      if (row.design.empty()) continue;  // quarantined cell: row omitted
      if (row.cprPercent != cpr) continue;
      table.addRow(
          {row.design,
           experiments::formatSci(
               experiments::displayFloor(row.rmsRelStruct * 100.0), 3),
           experiments::formatSci(
               experiments::displayFloor(row.rmsRelTiming * 100.0), 3),
           experiments::formatSci(
               experiments::displayFloor(row.rmsRelJoint * 100.0), 3),
           experiments::formatSci(row.timingErrorRate, 2)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // Combined CSV across all CPRs when requested.
  experiments::Table csv({"design", "cpr_percent", "period_ns",
                          "rms_rel_struct", "rms_rel_timing",
                          "rms_rel_joint"});
  for (const auto& row : rows) {
    if (row.design.empty()) continue;  // quarantined cell: row omitted
    csv.addRow({row.design, experiments::formatFixed(row.cprPercent, 1),
                experiments::formatFixed(row.periodNs, 4),
                experiments::formatSci(row.rmsRelStruct, 6),
                experiments::formatSci(row.rmsRelTiming, 6),
                experiments::formatSci(row.rmsRelJoint, 6)});
  }
  const std::string path = args.getString("csv", "");
  if (!path.empty()) {
    csv.writeCsvFile(path);
    std::cout << "(csv written to " << path << ")\n";
  }
  bench::printShardReport(shard);
  return 0;
  });
}
