// Throughput of the packed ML substrate against the seed per-row pipeline
// on the paper's per-bit timing-error model (33 forests on a 32-bit-wide
// trace) — the acceptance benchmark for the bit-packed CART rework (>= 8x
// combined train+predict is the CI gate).
//
// Self-checking, in the micro_timed_sim tradition: before any timing is
// reported the two substrates must agree *exactly* —
//   1. the packed popcount trainer must grow node arrays identical to the
//      retained row-scan reference trainer (fitReference) for every tree of
//      every per-bit forest, and
//   2. the 64-lane batched forest inference must match the scalar
//      per-row walk lane for lane on every test cycle and output bit, and
//   3. the batched evaluate() metrics must equal the scalar per-cycle
//      pipeline's ABPER/AVPE bit for bit.
//
// The reference timing loops reproduce the seed pipeline faithfully: one
// Dataset extraction per output bit (the 33x-redundant feature matrix) for
// training, and one fresh per-bit feature extraction + scalar forest walk
// per cycle for prediction.
//
// Usage: micro_forest [--width=32] [--train-cycles=N] [--test-cycles=N]
//                     [--trees=T] [--depth=D] [--seed=S] [--reps=N]
//                     [--min-speedup=X] [--json=path]
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <random>
#include <vector>

#include "experiments/cli.h"
#include "ml/random_forest.h"
#include "predict/bit_predictor.h"
#include "predict/features.h"

#include "bench_common.h"

namespace {

using Clock = std::chrono::steady_clock;
using oisa::predict::FeatureExtractor;
using oisa::predict::Trace;
using oisa::predict::TraceRecord;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Synthetic overclocked-adder trace with a learnable timing-error
/// process: a handful of transition-sensitized bits (a carry crossing bit
/// k flips bit k+1 when the previous cycle was quiet there) plus rare
/// broadband noise so the forests grow real trees, and untouched low bits
/// so the constant-label shortcut is exercised too.
Trace makeTrace(int width, std::uint64_t cycles, std::uint64_t seed) {
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  std::mt19937_64 rng(seed);
  Trace trace;
  trace.reserve(cycles);
  std::uint64_t prevA = 0;
  for (std::uint64_t t = 0; t < cycles; ++t) {
    TraceRecord rec;
    rec.a = rng() & mask;
    rec.b = rng() & mask;
    const std::uint64_t sum = rec.a + rec.b;
    rec.gold = sum & mask;
    rec.goldCout = ((sum >> width) & 1u) != 0;
    rec.diamond = rec.gold;
    rec.diamondCout = rec.goldCout;
    rec.silver = rec.gold;
    rec.silverCout = rec.goldCout;
    for (const int k : {3, 11, 19, 27}) {
      if (k + 1 >= width) continue;
      const bool carry = ((rec.a >> k) & (rec.b >> k) & 1u) != 0;
      const bool quiet = ((prevA >> k) & 1u) == 0;
      if (carry && quiet) rec.silver ^= std::uint64_t{1} << (k + 1);
    }
    if ((rng() & 0x3fu) == 0) {
      rec.silver ^= std::uint64_t{1}
                    << (rng() % static_cast<std::uint64_t>(width));
    }
    if ((rng() & 0xffu) == 0) rec.silverCout = !rec.silverCout;
    prevA = rec.a;
    trace.push_back(rec);
  }
  return trace;
}

/// Seed-style per-bit dataset: one full feature extraction per output bit.
oisa::ml::Dataset extractDataset(const FeatureExtractor& fx,
                                 const Trace& trace, int bit) {
  oisa::ml::Dataset data(fx.featureCount());
  data.reserve(trace.size() - 1);
  std::vector<std::uint8_t> row(fx.featureCount());
  for (std::size_t t = 1; t < trace.size(); ++t) {
    fx.extract(trace[t - 1], trace[t], bit, row);
    data.addRow(row, FeatureExtractor::timingErroneous(trace[t], bit,
                                                       fx.width()));
  }
  return data;
}

bool sameNodes(const oisa::ml::DecisionTree& a,
               const oisa::ml::DecisionTree& b) {
  if (a.nodes().size() != b.nodes().size()) return false;
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    const auto& x = a.nodes()[i];
    const auto& y = b.nodes()[i];
    if (x.feature != y.feature || x.left != y.left || x.right != y.right ||
        x.probability != y.probability) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);
  const int width = static_cast<int>(args.getU64("width", 32));
  const std::uint64_t trainCycles = args.getU64("train-cycles", 6000);
  const std::uint64_t testCycles = args.getU64("test-cycles", 3000);
  const double minSpeedup = args.getDouble("min-speedup", 0.0);
  const std::uint64_t baseSeed = args.getU64("seed", 42);

  predict::PredictorParams params;
  params.forest.treeCount = args.getU64("trees", 10);
  params.forest.tree.maxDepth = static_cast<int>(args.getU64("depth", 10));
  params.seed = baseSeed;

  const Trace trainTrace = makeTrace(width, trainCycles, baseSeed + 101);
  const Trace testTrace = makeTrace(width, testCycles, baseSeed + 202);
  const FeatureExtractor fx(width);
  const int bits = fx.outputBitCount();

  std::cout << "trace:  width " << width << " (" << bits
            << " output bits), train " << trainCycles << " / test "
            << testCycles << " cycles\nmodel:  " << params.forest.treeCount
            << " trees/forest, depth " << params.forest.tree.maxDepth
            << ", features " << fx.featureCount() << "\n\n";

  // Per-bit training seeds, as BitLevelPredictor::fit derives them.
  auto bitSeed = [&](int bit) {
    return params.seed +
           0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(bit + 1);
  };

  // -------------------------------------------------------------------
  // Correctness gate 1: packed trainer == reference trainer, node for
  // node, on every tree of every per-bit forest.
  // -------------------------------------------------------------------
  const predict::PackedTraceFeatures packedTrain = fx.packTrace(trainTrace);
  std::vector<ml::RandomForest> refForests(static_cast<std::size_t>(bits));
  std::uint64_t nodesCompared = 0;
  for (int bit = 0; bit < bits; ++bit) {
    const ml::Dataset data = extractDataset(fx, trainTrace, bit);
    ml::RandomForest& ref = refForests[static_cast<std::size_t>(bit)];
    ref.fitReference(data, params.forest, bitSeed(bit));
    ml::RandomForest packed;
    packed.fit(fx.bitView(packedTrain, bit), params.forest, bitSeed(bit));
    if (ref.trees().size() != packed.trees().size()) {
      std::cerr << "MISMATCH: tree counts differ at bit " << bit << "\n";
      return EXIT_FAILURE;
    }
    for (std::size_t t = 0; t < ref.trees().size(); ++t) {
      if (!sameNodes(ref.trees()[t], packed.trees()[t])) {
        std::cerr << "MISMATCH: packed and reference trainers disagree at "
                     "bit " << bit << ", tree " << t << "\n";
        return EXIT_FAILURE;
      }
      nodesCompared += ref.trees()[t].nodeCount();
    }
  }

  // -------------------------------------------------------------------
  // Correctness gate 2: batched inference == scalar walk, lane for lane,
  // on every test cycle and output bit.
  // -------------------------------------------------------------------
  const predict::PackedTraceFeatures packedTest = fx.packTrace(testTrace);
  {
    std::vector<std::uint64_t> featureWords(fx.featureCount());
    std::array<double, 64> probs{};
    std::vector<std::uint8_t> row(fx.featureCount());
    const std::size_t shared = packedTest.sharedCount;
    for (std::size_t w = 0; w < packedTest.wordCount; ++w) {
      const std::size_t lanes =
          std::min<std::size_t>(64, packedTest.rowCount - w * 64);
      for (std::size_t f = 0; f < shared; ++f) {
        featureWords[f] = packedTest.shared[f * packedTest.wordCount + w];
      }
      for (int bit = 0; bit < bits; ++bit) {
        const auto b = static_cast<std::size_t>(bit);
        featureWords[shared] =
            packedTest.goldPrev[b * packedTest.wordCount + w];
        featureWords[shared + 1] =
            packedTest.goldCur[b * packedTest.wordCount + w];
        const std::uint64_t batch =
            refForests[b].predictBatch(featureWords, probs);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          const std::size_t t = w * 64 + lane + 1;
          fx.extract(testTrace[t - 1], testTrace[t], bit, row);
          const bool scalar = refForests[b].predict(row);
          if (scalar != (((batch >> lane) & 1u) != 0)) {
            std::cerr << "MISMATCH: batched and scalar inference disagree "
                         "at cycle " << t << ", bit " << bit << "\n";
            return EXIT_FAILURE;
          }
        }
      }
    }
  }

  // -------------------------------------------------------------------
  // Timed runs. Reference = the seed pipeline shape: per-bit Dataset
  // extraction + row-scan training; per-cycle per-bit extraction + scalar
  // forest walks for prediction. Each phase runs `--reps` times and the
  // minimum is reported — scheduler noise only ever *adds* time, and the
  // packed intervals are short enough for one hiccup to swamp them.
  // -------------------------------------------------------------------
  const auto reps = std::max<std::uint64_t>(1, args.getU64("reps", 3));
  const auto timeOnce = [](auto&& phase) {
    const auto start = Clock::now();
    phase();
    return secondsSince(start);
  };
  // Reference and packed are timed inside the *same* repetition
  // (interleaved), so a contention window inflates both sides of the
  // ratio instead of just one.
  const auto timePair = [&](auto&& refPhase, auto&& packedPhase,
                            double& refBest, double& packedBest) {
    for (std::uint64_t i = 0; i < reps; ++i) {
      const double refSec = timeOnce(refPhase);
      const double packedSec = timeOnce(packedPhase);
      if (i == 0 || refSec < refBest) refBest = refSec;
      if (i == 0 || packedSec < packedBest) packedBest = packedSec;
    }
  };

  std::vector<ml::RandomForest> timedRef(static_cast<std::size_t>(bits));
  predict::BitLevelPredictor predictor(width, params);
  double refTrainSec = 0.0;
  double packedTrainSec = 0.0;
  timePair(
      [&] {
        for (int bit = 0; bit < bits; ++bit) {
          const ml::Dataset data = extractDataset(fx, trainTrace, bit);
          timedRef[static_cast<std::size_t>(bit)].fitReference(
              data, params.forest, bitSeed(bit));
        }
      },
      [&] { predictor.fit(trainTrace); }, refTrainSec, packedTrainSec);

  std::vector<std::uint64_t> refWrong(static_cast<std::size_t>(bits), 0);
  double refAvpeSum = 0.0;
  std::uint64_t refSkipped = 0;
  predict::PredictorEvaluation eval;
  double refPredictSec = 0.0;
  double packedPredictSec = 0.0;
  const auto refPredictPhase = [&] {
    std::fill(refWrong.begin(), refWrong.end(), 0);
    refAvpeSum = 0.0;
    refSkipped = 0;
    for (std::size_t t = 1; t < testTrace.size(); ++t) {
      const TraceRecord& prev = testTrace[t - 1];
      const TraceRecord& cur = testTrace[t];
      std::vector<std::uint8_t> row(fx.featureCount());
      std::uint64_t sumFlips = 0;
      bool coutFlip = false;
      for (int bit = 0; bit < bits; ++bit) {
        fx.extract(prev, cur, bit, row);
        const bool predicted =
            timedRef[static_cast<std::size_t>(bit)].predict(row);
        if (predicted) {
          if (bit == width) {
            coutFlip = true;
          } else {
            sumFlips |= std::uint64_t{1} << bit;
          }
        }
        if (predicted !=
            FeatureExtractor::timingErroneous(cur, bit, width)) {
          ++refWrong[static_cast<std::size_t>(bit)];
        }
      }
      const bool predictedCout = cur.goldCout != coutFlip;
      const std::uint64_t predictedSilver =
          (cur.gold ^ sumFlips) |
          (static_cast<std::uint64_t>(predictedCout ? 1 : 0) << width);
      const std::uint64_t realSilver = cur.silverValue(width);
      if (realSilver == 0) {
        ++refSkipped;
      } else {
        const std::uint64_t diff = predictedSilver >= realSilver
                                       ? predictedSilver - realSilver
                                       : realSilver - predictedSilver;
        refAvpeSum += static_cast<double>(diff) /
                      static_cast<double>(realSilver);
      }
    }
  };
  timePair(refPredictPhase, [&] { eval = predictor.evaluate(testTrace); },
           refPredictSec, packedPredictSec);
  const std::uint64_t refCycles = testTrace.size() - 1;
  // Same summation association as evaluate() (mean of per-bit rates, not
  // totalWrong / (cycles * bits)) — the exact-equality gate below depends
  // on it.
  double refAbperSum = 0.0;
  for (int bit = 0; bit < bits; ++bit) {
    refAbperSum += static_cast<double>(refWrong[static_cast<std::size_t>(bit)]) /
                   static_cast<double>(refCycles);
  }
  const double refAbper = refAbperSum / static_cast<double>(bits);
  const double refAvpe =
      refCycles - refSkipped
          ? refAvpeSum / static_cast<double>(refCycles - refSkipped)
          : 0.0;

  // -------------------------------------------------------------------
  // Correctness gate 3: the batched pipeline's metrics equal the scalar
  // pipeline's, exactly.
  // -------------------------------------------------------------------
  if (eval.abper != refAbper || eval.avpe != refAvpe ||
      eval.cycles != refCycles || eval.avpeSkipped != refSkipped) {
    std::cerr << "MISMATCH: batched evaluate() metrics differ from the "
                 "scalar pipeline (abper " << eval.abper << " vs " << refAbper
              << ", avpe " << eval.avpe << " vs " << refAvpe << ")\n";
    return EXIT_FAILURE;
  }

  const double refSec = refTrainSec + refPredictSec;
  const double packedSec = packedTrainSec + packedPredictSec;
  const double trainSpeedup =
      packedTrainSec > 0 ? refTrainSec / packedTrainSec : 0.0;
  const double predictSpeedup =
      packedPredictSec > 0 ? refPredictSec / packedPredictSec : 0.0;
  const double speedup = packedSec > 0 ? refSec / packedSec : 0.0;

  std::cout << "trainers agree: " << nodesCompared
            << " nodes node-for-node across " << bits << " forests\n"
            << "inference agrees: " << refCycles << " cycles x " << bits
            << " bits lane-for-lane (abper " << eval.abper << ")\n\n"
            << "reference (seed pipeline): train " << refTrainSec
            << " s, predict " << refPredictSec << " s\n"
            << "packed substrate:          train " << packedTrainSec
            << " s, predict " << packedPredictSec << " s\n"
            << "speedup:  train " << trainSpeedup << "x, predict "
            << predictSpeedup << "x, combined " << speedup << "x\n";

  bench::BenchJson json("micro_forest");
  json.add("width", static_cast<std::uint64_t>(width))
      .add("train_cycles", trainCycles)
      .add("test_cycles", testCycles)
      .add("trees", params.forest.treeCount)
      .add("nodes_compared", nodesCompared)
      .add("ref_train_sec", refTrainSec)
      .add("ref_predict_sec", refPredictSec)
      .add("packed_train_sec", packedTrainSec)
      .add("packed_predict_sec", packedPredictSec)
      .add("train_speedup", trainSpeedup)
      .add("predict_speedup", predictSpeedup);
  return bench::finishSpeedupBench(json, args, speedup, minSpeedup);
}
