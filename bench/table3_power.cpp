// Table III (extension): area / delay / power / energy characterization —
// the paper's energy-efficiency motivation quantified. Dynamic power comes
// from real switching activity in the event-driven simulator; leakage from
// cell areas. Savings are reported against the exact adder.
//
// Usage: table3_power [--cycles=N] [--seed=S] [--threads=N] [--csv=path]
#include <optional>
#include <random>

#include "experiments/grid_scheduler.h"
#include "timing/power.h"

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);
  const std::uint64_t cycles = args.getU64("cycles", 400);
  const std::uint64_t seed = args.getU64("seed", 42);

  const auto lib = timing::CellLibrary::generic65();
  const auto power = timing::PowerLibrary::generic65();

  std::mt19937_64 rng(seed);
  std::vector<std::vector<std::uint8_t>> stimuli;
  stimuli.reserve(cycles + 1);
  for (std::uint64_t i = 0; i <= cycles; ++i) {
    stimuli.push_back(circuits::packOperands(rng(), rng(), false, 32));
  }

  std::cout << "== Table III: area / delay / power at 0.3 ns, " << cycles
            << " random cycles ==\n\n";
  experiments::Table table({"design", "area[NAND2]", "critical[ns]",
                            "dyn[uW]", "leak[uW]", "total[uW]",
                            "energy/op[fJ]", "vs exact[%]"});

  // Per-design synthesis + power simulation is independent (the stimulus
  // vector is shared read-only), so fan it out across the pool; the exact
  // adder's baseline energy is picked out afterwards.
  const auto configs = core::paperDesigns();
  std::vector<
      std::optional<std::pair<circuits::SynthesizedDesign, timing::PowerReport>>>
      results(configs.size());
  experiments::GridScheduler pool(bench::threadsOption(args));
  pool.run(configs.size(), [&](std::size_t i) {
    auto design =
        circuits::synthesize(configs[i], lib, circuits::SynthesisOptions{});
    const auto report =
        measurePower(design.netlist, design.delays, power, 0.3, stimuli);
    results[i] = {std::move(design), report};
  });
  double exactEnergy = 0.0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (configs[i].exact) exactEnergy = results[i]->second.energyPerOpFj;
  }
  for (const auto& entry : results) {
    const auto& [design, report] = *entry;
    const double savings =
        exactEnergy > 0.0
            ? (1.0 - report.energyPerOpFj / exactEnergy) * 100.0
            : 0.0;
    table.addRow({design.config.name(),
                  experiments::formatFixed(design.areaNand2, 0),
                  experiments::formatFixed(design.criticalDelayNs, 4),
                  experiments::formatFixed(report.dynamicPowerUw, 1),
                  experiments::formatFixed(report.leakagePowerUw, 2),
                  experiments::formatFixed(report.totalPowerUw, 1),
                  experiments::formatFixed(report.energyPerOpFj, 1),
                  experiments::formatFixed(savings, 1)});
  }
  bench::emit(table, args);
  return 0;
}
