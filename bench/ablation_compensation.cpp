// Ablation C: what each COMP mechanism buys. Sweeps correction and
// reduction sizes at fixed block/spec and reports structural relative-error
// RMS and error rate (behavioral model only: fast, paper-scale samples).
//
// Usage: ablation_compensation [--samples=N] [--block=8] [--spec=0]
//                              [--seed=S] [--csv=path]
#include <random>

#include "core/error_stats.h"
#include "core/isa_adder.h"

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);
  const std::uint64_t samples = args.getU64("samples", 2000000);
  const int block = static_cast<int>(args.getU64("block", 8));
  const int spec = static_cast<int>(args.getU64("spec", 0));
  const std::uint64_t seed = args.getU64("seed", 42);

  std::cout << "== Ablation: compensation mechanisms (block=" << block
            << ", spec=" << spec << ", " << samples << " samples) ==\n\n";
  experiments::Table table({"design", "correction", "reduction",
                            "rms-rel-err[%]", "err-rate", "worst-rel-err"});

  for (const int corr : {0, 1, 2}) {
    for (const int red : {0, 2, 4, 6}) {
      const auto cfg = core::makeIsa(block, spec, corr, red);
      const core::IsaAdder isa(cfg);
      core::ErrorStats rel;
      core::ErrorStats arith;
      std::mt19937_64 rng(seed);
      for (std::uint64_t i = 0; i < samples; ++i) {
        const std::uint64_t a = rng() & 0xffffffffull;
        const std::uint64_t b = rng() & 0xffffffffull;
        const core::IsaSum gold = isa.add(a, b);
        const core::IsaSum diamond = isa.exactAdd(a, b);
        const auto e = static_cast<double>(
            static_cast<std::int64_t>(gold.sum) -
            static_cast<std::int64_t>(diamond.sum));
        arith.add(e);
        if (diamond.sum != 0) {
          rel.add(e / static_cast<double>(diamond.sum));
        }
      }
      table.addRow({cfg.name(), std::to_string(corr), std::to_string(red),
                    experiments::formatSci(
                        experiments::displayFloor(rel.rms() * 100.0), 3),
                    experiments::formatSci(arith.errorRate(), 3),
                    experiments::formatSci(rel.maxAbs(), 3)});
    }
  }
  bench::emit(table, args);
  return 0;
}
