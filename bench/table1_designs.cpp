// Table I (implied by Sec. V-A): characterization of the twelve designs —
// chosen sub-adder topology, critical delay against the 0.3 ns constraint,
// area and gate count. Regenerates the design-selection context of the
// paper ("the best implementations fitting the 0.3 ns timing constraint").
//
// Usage: table1_designs [--relax] [--csv=path]
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);
  const auto designs = bench::synthesizeAll(args);

  std::cout << "== Table I: paper design points synthesized at 0.3 ns ==\n\n";
  experiments::Table table({"design", "paths", "topology", "critical[ns]",
                            "slack[ns]", "area[NAND2]", "gates", "meets"});
  for (const auto& d : designs) {
    table.addRow({d.config.name(),
                  std::to_string(d.config.pathCount()),
                  std::string(circuits::topologyName(d.topology)),
                  experiments::formatFixed(d.criticalDelayNs, 4),
                  experiments::formatFixed(0.3 - d.criticalDelayNs, 4),
                  experiments::formatFixed(d.areaNand2, 1),
                  std::to_string(d.netlist.gateCount()),
                  d.meetsTiming ? "yes" : "NO"});
  }
  bench::emit(table, args);
  return 0;
}
