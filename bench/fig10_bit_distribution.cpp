// Fig. 10: bit-level-equivalent internal error distribution of ISA
// (8,0,0,4) under 15% CPR — structural fault contributions translated to
// equivalent bit positions vs bitwise timing-error rates, with an ASCII
// bar rendering of the two series.
//
// Usage: fig10_bit_distribution [--cycles=N] [--block=8] [--spec=0]
//          [--corr=0] [--red=4] [--cpr=15] [--seed=S] [--threads=N]
//          [--csv=path] [--trace-out=f] [--metrics-out=f]
#include <algorithm>

#include "experiments/runner.h"

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);
  const auto obsCtx = bench::beginObs(args);

  const auto cfg = core::makeIsa(static_cast<int>(args.getU64("block", 8)),
                                 static_cast<int>(args.getU64("spec", 0)),
                                 static_cast<int>(args.getU64("corr", 0)),
                                 static_cast<int>(args.getU64("red", 4)));
  const double cpr = args.getDouble("cpr", 15.0);
  const auto design = circuits::synthesize(
      cfg, timing::CellLibrary::generic65(), circuits::SynthesisOptions{});

  experiments::RunOptions options;
  options.cycles = args.getU64("cycles", 20000);
  options.seed = args.getU64("seed", 42);
  options.threads = bench::threadsOption(args);
  const auto dist = runBitDistribution(design, cpr, options);

  std::cout << "== Fig. 10: bit-level-equivalent error distribution in ISA "
            << cfg.name() << " under " << cpr << "% CPR ==\n\n";

  double maxRate = 1e-12;
  for (std::size_t i = 0; i < dist.structuralRate.size(); ++i) {
    maxRate = std::max({maxRate, dist.structuralRate[i], dist.timingRate[i]});
  }
  experiments::Table table(
      {"bit", "structural", "timing", "structural|timing bars"});
  for (std::size_t i = 0; i < dist.structuralRate.size(); ++i) {
    const int sBar =
        static_cast<int>(dist.structuralRate[i] / maxRate * 30.0 + 0.5);
    const int tBar =
        static_cast<int>(dist.timingRate[i] / maxRate * 30.0 + 0.5);
    table.addRow({std::to_string(i),
                  experiments::formatSci(dist.structuralRate[i], 2),
                  experiments::formatSci(dist.timingRate[i], 2),
                  std::string(static_cast<std::size_t>(sBar), '#') + "|" +
                      std::string(static_cast<std::size_t>(tBar), '*')});
  }
  bench::emit(table, args);
  bench::writeObsArtifacts(obsCtx, bench::ShardContext{});
  return 0;
}
