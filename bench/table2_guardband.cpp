// Guardband characterization (paper Sec. III motivation): multi-corner
// worst-case analysis of every design — the conservative margin that
// bit-level timing-error prediction lets a typical-silicon part reclaim
// through overclocking. Also reports the predictor-aggregated feature
// importance on one overclocked design, evidencing that the paper's
// {x[t-1], yRTL} features carry signal.
//
// Usage: table2_guardband [--importance] [--threads=N] [--csv=path]
#include <algorithm>
#include <numeric>

#include "experiments/grid_scheduler.h"
#include "experiments/runner.h"
#include "experiments/trace_collector.h"
#include "timing/corners.h"

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);
  const auto lib = timing::CellLibrary::generic65();

  std::cout << "== Table II: multi-corner guardband per design ==\n\n";
  experiments::Table table({"design", "FF[ns]", "TT[ns]", "SS[ns]",
                            "guardband[ns]", "recoverable[%]"});
  // Each design's synthesis + corner analysis is independent: fan them out
  // across the pool, then print in design order (deterministic at any
  // thread count).
  const auto designs = core::paperDesigns();
  std::vector<timing::GuardbandReport> reports(designs.size());
  experiments::GridScheduler pool(bench::threadsOption(args));
  pool.run(designs.size(), [&](std::size_t i) {
    // Analyze the topology the synthesis flow actually picks at 0.3 ns.
    const auto design =
        circuits::synthesize(designs[i], lib, circuits::SynthesisOptions{});
    reports[i] = timing::analyzeGuardband(design.netlist, lib);
  });
  for (std::size_t i = 0; i < designs.size(); ++i) {
    const auto& report = reports[i];
    table.addRow({designs[i].name(),
                  experiments::formatFixed(report.bestDelayNs, 4),
                  experiments::formatFixed(report.typicalDelayNs, 4),
                  experiments::formatFixed(report.worstDelayNs, 4),
                  experiments::formatFixed(report.guardbandNs(), 4),
                  experiments::formatFixed(
                      report.recoverableFraction() * 100.0, 1)});
  }
  bench::emit(table, args);

  if (args.getBool("importance", true)) {
    // Train the predictor on an aggressively overclocked design and list
    // the most informative features.
    circuits::SynthesisOptions synth;
    synth.relaxSlack = true;
    const auto design = circuits::synthesize(
        core::makeIsa(16, 2, 0, 4), lib, synth);
    auto workload = experiments::makeWorkload("uniform", 32, 42);
    const auto trace = experiments::collectTrace(
        design, experiments::overclockedPeriodNs(0.3, 15.0), *workload,
        6000);
    predict::BitLevelPredictor predictor(32);
    predictor.fit(trace);
    const auto importance = predictor.featureImportance();
    std::vector<std::size_t> order(importance.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) {
                return importance[x] > importance[y];
              });
    std::cout << "\n== Top-10 predictor features, ISA (16,2,0,4) @ 15% CPR "
                 "==\n\n";
    experiments::Table top({"rank", "feature", "importance"});
    for (int r = 0; r < 10; ++r) {
      top.addRow({std::to_string(r + 1),
                  predictor.extractor().featureName(order[static_cast<std::size_t>(r)]),
                  experiments::formatFixed(
                      importance[order[static_cast<std::size_t>(r)]], 4)});
    }
    top.print(std::cout);
  }
  return 0;
}
