// Throughput of the 64-lane timed trace collector (experiments::
// TraceCollector over timing::LaneTimedSimulator) against the retained
// sequential reference (collectTraceScalar, one scalar wheel-engine cycle
// per stimulus) on an overclocked 32-bit ISA design — the acceptance
// benchmark for the lane rework (>= 4x single-thread is the CI gate).
//
// Self-checking: before any timing is reported, both collectors run the
// same seeded workload and every trace record must match field for field
// (the lane replay is bit-exact, not approximate — see
// tests/lane_sim_test.cpp for the full differential suite).
//
// Usage: micro_lane_sim [--cycles=N] [--check-cycles=N] [--cpr=15]
//                       [--min-speedup=X] [--json=path]
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "circuits/synthesis.h"
#include "core/isa_config.h"
#include "experiments/cli.h"
#include "experiments/trace_collector.h"
#include "experiments/workload.h"
#include "timing/cell_library.h"

#include "bench_common.h"

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);
  const std::uint64_t cycles = args.getU64("cycles", 30000);
  const std::uint64_t checkCycles =
      args.getU64("check-cycles", std::min<std::uint64_t>(cycles, 4000));
  const double cpr = args.getDouble("cpr", 15.0);
  const double minSpeedup = args.getDouble("min-speedup", 0.0);

  circuits::SynthesisOptions synth;
  synth.relaxSlack = true;  // the benches' default sign-off flow
  const auto design = circuits::synthesize(
      core::makeIsa(8, 2, 1, 4), timing::CellLibrary::generic65(), synth);
  const double period = experiments::overclockedPeriodNs(0.3, cpr);

  experiments::TraceCollector collector(design, period);
  std::cout << "design:  " << design.config.name() << "  ("
            << design.netlist.gateCount() << " gates, critical "
            << design.criticalDelayNs << " ns)\n"
            << "period:  " << period << " ns (" << cpr << "% CPR)\n"
            << "lanes:   " << collector.lanesFor(cycles) << " (warm-up "
            << collector.warmUpCycles() << " cycles/chunk)\ncycles:  "
            << cycles << "\n\n";

  // Correctness gate: identical records from identically-seeded streams.
  {
    experiments::UniformWorkload scalarWl(32, 123);
    experiments::UniformWorkload laneWl(32, 123);
    const auto scalar = experiments::collectTraceScalar(
        design, period, scalarWl, checkCycles);
    const auto lane = collector.collect(laneWl, checkCycles);
    for (std::size_t t = 0; t < scalar.size(); ++t) {
      const auto& s = scalar[t];
      const auto& l = lane[t];
      if (l.a != s.a || l.b != s.b || l.carryIn != s.carryIn ||
          l.diamond != s.diamond || l.diamondCout != s.diamondCout ||
          l.gold != s.gold || l.goldCout != s.goldCout ||
          l.silver != s.silver || l.silverCout != s.silverCout) {
        std::cerr << "MISMATCH: lane and scalar collectors disagree at "
                  << "cycle " << t << "\n";
        return EXIT_FAILURE;
      }
    }
  }

  std::uint64_t checksum = 0;

  // Sequential reference: the seed per-cycle collection loop.
  double scalarSec = 0.0;
  {
    experiments::UniformWorkload workload(32, 7);
    const auto start = Clock::now();
    const auto trace =
        experiments::collectTraceScalar(design, period, workload, cycles);
    scalarSec = secondsSince(start);
    for (const auto& rec : trace) checksum += rec.silver;
  }

  // Lane path: 64 chunked replay streams per wheel sweep.
  double laneSec = 0.0;
  {
    experiments::UniformWorkload workload(32, 7);
    const auto start = Clock::now();
    const auto trace = collector.collect(workload, cycles);
    laneSec = secondsSince(start);
    for (const auto& rec : trace) checksum -= rec.silver;
  }
  if (checksum != 0) {
    std::cerr << "MISMATCH: timed runs disagree (checksum " << checksum
              << ")\n";
    return EXIT_FAILURE;
  }

  const auto total = static_cast<double>(cycles);
  const double scalarRate = total / scalarSec;
  const double laneRate = total / laneSec;
  const double speedup = scalarRate > 0 ? laneRate / scalarRate : 0.0;
  std::cout << "scalar collector:  " << scalarSec << " s  ("
            << scalarRate / 1e3 << " kcycles/s)\n"
            << "lane collector:    " << laneSec << " s  ("
            << laneRate / 1e3 << " kcycles/s)\n"
            << "speedup:           " << speedup << "x\n";

  bench::BenchJson json("micro_lane_sim");
  json.add("design", design.config.name())
      .add("gates", static_cast<std::uint64_t>(design.netlist.gateCount()))
      .add("cycles", cycles)
      .add("period_ns", period)
      .add("cpr_percent", cpr)
      .add("lanes", static_cast<std::uint64_t>(collector.lanesFor(cycles)))
      .add("warmup_cycles",
           static_cast<std::uint64_t>(collector.warmUpCycles()))
      .add("scalar_cycles_per_sec", scalarRate)
      .add("lane_cycles_per_sec", laneRate);
  return bench::finishSpeedupBench(json, args, speedup, minSpeedup);
}
