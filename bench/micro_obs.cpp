// Telemetry overhead gate: the fig7 cell path (train the per-bit forest,
// evaluate ABPER/AVPE) run with the obs substrate fully armed (metrics
// registry on + span tracing into the ring) versus stripped (metrics
// master switch off, tracing disarmed). The CI gate is --min-speedup=0.97:
// instrumentation may cost at most ~3% on the real campaign path.
//
// Self-checking before any timing is reported:
//   1. byte-identity — the evaluation rows produced with telemetry armed
//      must equal the stripped rows bit for bit (cross-check #11: the
//      substrate is side-effect-only);
//   2. liveness — the armed run must actually record (counters move,
//      spans land in the ring); gating a no-op would prove nothing.
//
// Usage: micro_obs [--train-cycles=N] [--test-cycles=N] [--trees=T]
//                  [--seed=S] [--reps=N] [--threads=N]
//                  [--min-speedup=X] [--json=path]
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "circuits/synthesis.h"
#include "experiments/cli.h"
#include "experiments/runner.h"
#include "obs/metrics.h"
#include "obs/span.h"

#include "bench_common.h"

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

bool rowsEqual(const std::vector<oisa::experiments::PredictionRow>& a,
               const std::vector<oisa::experiments::PredictionRow>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].design != b[i].design || a[i].cprPercent != b[i].cprPercent ||
        a[i].periodNs != b[i].periodNs || a[i].abper != b[i].abper ||
        a[i].avpe != b[i].avpe || a[i].trainCycles != b[i].trainCycles ||
        a[i].testCycles != b[i].testCycles) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oisa;
  return bench::runGuarded([&] {
    const experiments::ArgParser args(argc, argv);
    const double minSpeedup = args.getDouble("min-speedup", 0.0);

    // One representative design at one CPR point — the same cell body
    // fig7 sweeps 36 times.
    const auto design =
        circuits::synthesize(core::makeIsa(8, 0, 0, 4),
                             timing::CellLibrary::generic65(),
                             circuits::SynthesisOptions{});
    const std::vector<circuits::SynthesizedDesign> designs = {design};
    const std::vector<double> cprs = {15.0};

    experiments::PredictionOptions options;
    options.trainCycles = args.getU64("train-cycles", 6000);
    options.testCycles = args.getU64("test-cycles", 3000);
    options.run.seed = args.getU64("seed", 42);
    options.run.threads = bench::threadsOption(args);
    options.predictor.forest.treeCount = args.getU64("trees", 10);

    const auto runCell = [&] {
      return runPredictionEvaluation(designs, cprs, options);
    };

    // -----------------------------------------------------------------
    // Correctness gate 1: telemetry on or off, the rows are identical —
    // the substrate observes the campaign, it never participates in it.
    // -----------------------------------------------------------------
    obs::setMetricsEnabled(false);
    obs::stopTracing();
    const auto strippedRows = runCell();

    obs::setMetricsEnabled(true);
    obs::startTracing();
    const obs::MetricsSnapshot before = obs::snapshotMetrics();
    const auto armedRows = runCell();
    const obs::MetricsSnapshot after = obs::snapshotMetrics();
    const std::string trace = obs::drainTraceJson();
    obs::stopTracing();

    if (!rowsEqual(strippedRows, armedRows)) {
      std::cerr << "MISMATCH: telemetry changed the evaluation rows\n";
      return EXIT_FAILURE;
    }

    // -----------------------------------------------------------------
    // Correctness gate 2: the armed run actually recorded something.
    // -----------------------------------------------------------------
    const auto delta = [&](const char* name) {
      const auto b = before.counters.find(name);
      const auto a = after.counters.find(name);
      const std::uint64_t b0 = b == before.counters.end() ? 0 : b->second;
      const std::uint64_t a0 = a == after.counters.end() ? 0 : a->second;
      return a0 - b0;
    };
    const std::uint64_t cells = delta("grid.cells_completed");
    const std::uint64_t evalRows = delta("predict.eval_rows");
    const std::uint64_t simEvents = delta("sim.events_committed");
    if (cells == 0 || evalRows == 0 || simEvents == 0) {
      std::cerr << "MISMATCH: armed run recorded no counters (cells " << cells
                << ", eval rows " << evalRows << ", sim events " << simEvents
                << ")\n";
      return EXIT_FAILURE;
    }
    if (trace.find("\"name\": \"cell\"") == std::string::npos) {
      std::cerr << "MISMATCH: armed run produced no cell spans\n";
      return EXIT_FAILURE;
    }

    // -----------------------------------------------------------------
    // Timed runs, interleaved min-of-reps: stripped is the reference,
    // armed the contender; speedup = stripped/armed, so 1.0 means free
    // and 0.97 is the 3%-overhead ceiling CI enforces.
    // -----------------------------------------------------------------
    const auto reps = std::max<std::uint64_t>(1, args.getU64("reps", 7));
    double strippedSec = 0.0;
    double armedSec = 0.0;
    for (std::uint64_t i = 0; i < reps; ++i) {
      obs::setMetricsEnabled(false);
      const auto s0 = Clock::now();
      const auto sRows = runCell();
      const double s = secondsSince(s0);

      obs::setMetricsEnabled(true);
      obs::startTracing();
      const auto a0 = Clock::now();
      const auto aRows = runCell();
      const double a = secondsSince(a0);
      obs::stopTracing();

      if (!rowsEqual(sRows, aRows)) {
        std::cerr << "MISMATCH: timed-loop rows diverged at rep " << i << "\n";
        return EXIT_FAILURE;
      }
      if (i == 0 || s < strippedSec) strippedSec = s;
      if (i == 0 || a < armedSec) armedSec = a;
    }
    obs::setMetricsEnabled(true);  // leave the process-default state

    const double speedup = armedSec > 0 ? strippedSec / armedSec : 0.0;
    std::cout << "fig7 cell (" << design.config.name() << " @ 15% CPR, train "
              << options.trainCycles << " / test " << options.testCycles
              << " cycles)\nrows identical armed vs stripped; armed run: "
              << cells << " cell(s), " << evalRows
              << " eval rows, spans recorded\n\n"
              << "stripped: " << strippedSec << " s\narmed:    " << armedSec
              << " s\nspeedup:  " << speedup << "x (1.0 = telemetry free)\n";

    bench::BenchJson json("micro_obs");
    json.add("train_cycles", options.trainCycles)
        .add("test_cycles", options.testCycles)
        .add("cells", cells)
        .add("eval_rows", evalRows)
        .add("stripped_sec", strippedSec)
        .add("armed_sec", armedSec);
    return bench::finishSpeedupBench(json, args, speedup, minSpeedup);
  });
}
