// Ablation B: predictor model family and feature ablation. Compares the
// paper's Random Forest against a single decision tree and the majority
// baseline, and quantifies what the {yRTL[t-1], yRTL[t]} output-bit
// features contribute.
//
// Usage: ablation_predictor [--train-cycles=N] [--test-cycles=N]
//                           [--cpr=15] [--seed=S] [--csv=path]
#include "experiments/runner.h"

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);

  const std::vector<core::IsaConfig> subset = {
      core::makeIsa(8, 0, 0, 4), core::makeIsa(16, 2, 0, 4),
      core::makeExact(32)};
  std::vector<circuits::SynthesizedDesign> designs;
  for (const auto& cfg : subset) {
    designs.push_back(circuits::synthesize(
        cfg, timing::CellLibrary::generic65(), circuits::SynthesisOptions{}));
  }

  const double cprs[] = {args.getDouble("cpr", 15.0)};
  experiments::PredictionOptions options;
  options.trainCycles = args.getU64("train-cycles", 6000);
  options.testCycles = args.getU64("test-cycles", 3000);
  options.run.seed = args.getU64("seed", 42);

  struct Variant {
    const char* label;
    predict::ModelKind model;
    bool outputBits;
  };
  const Variant variants[] = {
      {"random-forest", predict::ModelKind::RandomForest, true},
      {"decision-tree", predict::ModelKind::DecisionTree, true},
      {"majority", predict::ModelKind::Majority, true},
      {"rf-no-output-bits", predict::ModelKind::RandomForest, false},
  };

  std::cout << "== Ablation: predictor family and features @ " << cprs[0]
            << "% CPR ==\n\n";
  experiments::Table table({"design", "model", "abper", "avpe"});
  for (const Variant& variant : variants) {
    options.predictor.model = variant.model;
    options.predictor.includeOutputBits = variant.outputBits;
    const auto rows = runPredictionEvaluation(designs, cprs, options);
    for (const auto& row : rows) {
      table.addRow({row.design, variant.label,
                    experiments::formatSci(
                        experiments::displayFloor(row.abper), 3),
                    experiments::formatSci(
                        experiments::displayFloor(row.avpe), 3)});
    }
  }
  bench::emit(table, args);
  return 0;
}
