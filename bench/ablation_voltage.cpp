// Ablation E: voltage over-scaling (VOS) — the dual of overclocking from
// the paper's motivation [1]. At a fixed 0.3 ns clock, the supply is
// lowered until paths miss the cycle; the same joint structural+timing
// error methodology applies, with energy scaling as Vdd^2.
//
// Usage: ablation_voltage [--cycles=N] [--seed=S] [--csv=path]
#include "core/error_model.h"
#include "experiments/trace_collector.h"
#include "timing/voltage.h"

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);
  const std::uint64_t cycles = args.getU64("cycles", 4000);
  const std::uint64_t seed = args.getU64("seed", 42);

  const auto nominalLib = timing::CellLibrary::generic65();
  const timing::VoltageModel model;
  const std::vector<core::IsaConfig> subset = {
      core::makeIsa(8, 0, 0, 4), core::makeIsa(16, 2, 1, 6),
      core::makeExact(32)};
  const double voltages[] = {1.20, 1.10, 1.05, 1.00, 0.95};

  std::cout << "== Ablation: voltage over-scaling at a fixed 0.3 ns clock "
               "==\n(alpha-power-law delay, energy ~ Vdd^2)\n\n";
  experiments::Table table({"design", "vdd[V]", "delay-factor",
                            "energy-factor", "timing-err-rate",
                            "joint-rms[%]"});
  for (const auto& cfg : subset) {
    for (const double vdd : voltages) {
      // Scale the library, re-synthesize timing at that voltage, relax
      // slack against the unchanged 0.3 ns constraint at nominal voltage.
      circuits::SynthesisOptions synth;
      synth.relaxSlack = true;
      auto design = circuits::synthesize(cfg, nominalLib, synth);
      // Derate the relaxed annotation to the scaled voltage.
      const double factor = timing::voltageDelayFactor(vdd, model);
      for (std::uint32_t g = 0; g < design.netlist.gateCount(); ++g) {
        design.delays.scale(netlist::GateId{g}, factor);
      }

      auto workload = experiments::makeWorkload("uniform", 32, seed);
      const auto trace =
          experiments::collectTrace(design, 0.3, *workload, cycles);
      core::ErrorCombination combo;
      std::uint64_t timingErrors = 0;
      for (const auto& rec : trace) {
        combo.add(core::OutputTriple{rec.diamondValue(32),
                                     rec.goldValue(32),
                                     rec.silverValue(32)});
        timingErrors += rec.silverValue(32) != rec.goldValue(32);
      }
      table.addRow(
          {cfg.name(), experiments::formatFixed(vdd, 2),
           experiments::formatFixed(factor, 3),
           experiments::formatFixed(timing::voltageEnergyFactor(vdd, model),
                                    3),
           experiments::formatSci(
               static_cast<double>(timingErrors) /
                   static_cast<double>(trace.size()),
               2),
           experiments::formatSci(experiments::displayFloor(
               combo.relJoint().rms() * 100.0), 2)});
    }
  }
  bench::emit(table, args);
  std::cout << "\nSpeculative designs tolerate deeper voltage scaling than "
               "the exact adder at iso-clock, mirroring the overclocking "
               "result.\n";
  return 0;
}
