// Ablation A: effect of the power-recovery (slack-relaxation) sizing pass
// on overclocking robustness. Runs the Fig. 9 pipeline on a design subset
// with and without relaxation: relaxed netlists have less timing headroom,
// so timing errors appear earlier — quantifying the guardband that synthesis
// slack silently provides.
//
// Usage: ablation_relaxation [--cycles=N] [--seed=S] [--csv=path]
#include "experiments/runner.h"

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);

  experiments::RunOptions options;
  options.cycles = args.getU64("cycles", 4000);
  options.seed = args.getU64("seed", 42);

  const std::vector<core::IsaConfig> subset = {
      core::makeIsa(8, 0, 0, 4), core::makeIsa(16, 2, 1, 6),
      core::makeExact(32)};

  std::cout << "== Ablation: slack relaxation (power recovery) ==\n\n";
  experiments::Table table({"design", "relaxed", "critical[ns]", "cpr[%]",
                            "timing-rms[%]", "joint-rms[%]"});
  for (const bool relaxed : {false, true}) {
    circuits::SynthesisOptions synth;
    synth.relaxSlack = relaxed;
    std::vector<circuits::SynthesizedDesign> designs;
    for (const auto& cfg : subset) {
      designs.push_back(circuits::synthesize(
          cfg, timing::CellLibrary::generic65(), synth));
    }
    const auto rows =
        runErrorCombination(designs, bench::paperCprs(), options);
    for (const auto& row : rows) {
      double critical = 0.0;
      for (const auto& d : designs) {
        if (d.config.name() == row.design) critical = d.criticalDelayNs;
      }
      table.addRow(
          {row.design, relaxed ? "yes" : "no",
           experiments::formatFixed(critical, 4),
           experiments::formatFixed(row.cprPercent, 0),
           experiments::formatSci(
               experiments::displayFloor(row.rmsRelTiming * 100.0), 3),
           experiments::formatSci(
               experiments::displayFloor(row.rmsRelJoint * 100.0), 3)});
    }
  }
  bench::emit(table, args);
  return 0;
}
