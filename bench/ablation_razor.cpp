// Ablation D: Razor-style detect-and-replay vs prediction-guided
// approximate operation under overclocking (paper Sec. III: BTWC recovery
// "incurs silicon overhead ... and recovery penalty"). For each design and
// CPR this reports the Razor detection rate, the throughput after replay
// penalties, and the joint error an approximate (no-recovery) operation
// would accept instead.
//
// Usage: ablation_razor [--cycles=N] [--penalty=5] [--margin=0.06]
//                       [--seed=S] [--csv=path]
#include <random>

#include "experiments/runner.h"
#include "experiments/trace_collector.h"
#include "timing/razor.h"

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);
  const std::uint64_t cycles = args.getU64("cycles", 3000);
  const double penalty = args.getDouble("penalty", 5.0);
  const double margin = args.getDouble("margin", 0.06);
  const std::uint64_t seed = args.getU64("seed", 42);

  const auto lib = timing::CellLibrary::generic65();
  circuits::SynthesisOptions synth;
  synth.relaxSlack = true;

  const std::vector<core::IsaConfig> subset = {
      core::makeIsa(8, 0, 0, 4), core::makeIsa(16, 2, 1, 6),
      core::makeExact(32)};

  std::cout << "== Ablation: Razor detect-and-replay vs approximate "
               "operation ==\n(penalty "
            << penalty << " cycles per replay, shadow margin " << margin
            << " ns)\n\n";
  experiments::Table table({"design", "cpr[%]", "razor-detect-rate",
                            "razor-throughput-x", "approx-joint-rms[%]",
                            "approx-throughput-x"});

  for (const auto& cfg : subset) {
    const auto design = circuits::synthesize(cfg, lib, synth);
    for (const double cpr : bench::paperCprs()) {
      const double period = experiments::overclockedPeriodNs(0.3, cpr);

      // Razor arm: shadow latch + replay.
      timing::RazorSampler razor(design.netlist, design.delays, period,
                                 margin, penalty);
      std::mt19937_64 rng(seed);
      razor.initialize(circuits::packOperands(rng(), rng(), false, 32));
      for (std::uint64_t i = 0; i < cycles; ++i) {
        (void)razor.step(circuits::packOperands(rng(), rng(), false, 32));
      }

      // Approximate arm: run open-loop and measure the joint error.
      experiments::RunOptions options;
      options.cycles = cycles;
      options.seed = seed;
      const double one[] = {cpr};
      const auto rows = runErrorCombination({design}, one, options);

      table.addRow(
          {cfg.name(), experiments::formatFixed(cpr, 0),
           experiments::formatSci(razor.detectionRate(), 2),
           experiments::formatFixed(razor.throughputGain(0.3), 3),
           experiments::formatSci(experiments::displayFloor(
               rows.front().rmsRelJoint * 100.0), 2),
           experiments::formatFixed(0.3 / period, 3)});
    }
  }
  bench::emit(table, args);
  std::cout << "\nRazor trades replay cycles for exactness; the "
               "prediction/approximation route keeps the full frequency "
               "gain and accepts the joint error instead.\n";
  return 0;
}
