// Throughput of the integer-time wheel engine (timing::TimedSimulator)
// against the seed binary-heap engine (timing::HeapSimulator) on an
// overclocked 32-bit ISA design — the acceptance benchmark for the timed
// rework (>= 5x single-thread is the CI gate). Both engines run the
// identical clocked loop: apply inputs, advance one period, latch outputs.
// The heap path reproduces the seed ClockedSampler cycle (per-cycle
// packOperands and sampleOutputs allocations, binary-heap events); the
// wheel path is the allocation-free stepInto.
//
// Self-checking: both engines must latch identical outputs on every
// warm-up cycle before any timing is reported (they share the integer-ps
// grid, so agreement is exact, not approximate).
//
// Usage: micro_timed_sim [--cycles=N] [--cpr=15] [--min-speedup=X]
//                        [--json=path]
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <random>
#include <vector>

#include "circuits/isa_netlist.h"
#include "core/isa_config.h"
#include "experiments/cli.h"
#include "timing/event_sim.h"
#include "timing/heap_sim.h"
#include "timing/sta.h"

#include "bench_common.h"

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);
  const std::uint64_t cycles = args.getU64("cycles", 20000);
  const double cpr = args.getDouble("cpr", 15.0);
  const double minSpeedup = args.getDouble("min-speedup", 0.0);

  const auto cfg = core::makeIsa(8, 2, 1, 4);  // 32-bit paper design
  const auto nl = circuits::buildIsaNetlist(cfg);
  const timing::CellLibrary lib = timing::CellLibrary::generic65();
  const timing::DelayAnnotation delays(nl, lib);
  const double critical = timing::criticalDelayNs(nl, delays);
  const double period = critical * (1.0 - cpr / 100.0);

  timing::HeapSimulator heap(nl, delays);
  timing::ClockedSampler wheel(nl, delays, period);
  const timing::TimePs periodPs = wheel.periodPs();

  std::cout << "netlist: " << cfg.name() << "  (" << nl.gateCount()
            << " gates, critical " << critical << " ns)\n"
            << "period:  " << period << " ns (" << cpr << "% CPR, "
            << periodPs << " ps)\ncycles:  " << cycles << "\n\n";

  // Pre-generate the stimulus so both loops time pure simulation.
  std::mt19937_64 rng(123);
  std::vector<std::uint64_t> as(cycles + 1), bs(cycles + 1);
  for (auto& v : as) v = rng();
  for (auto& v : bs) v = rng();

  // Correctness gate: both engines must latch identical outputs every
  // cycle (exact, thanks to the shared integer-ps time grid).
  {
    timing::HeapSimulator h(nl, delays);
    timing::ClockedSampler w(nl, delays, period);
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> wheelOut;
    const std::uint64_t checkCycles = std::min<std::uint64_t>(cycles, 2000);
    circuits::packOperandsInto(as[0], bs[0], false, 32, in);
    h.applyInputs(in);
    (void)h.settlePs();
    w.initialize(in);
    for (std::uint64_t t = 1; t <= checkCycles; ++t) {
      circuits::packOperandsInto(as[t], bs[t], false, 32, in);
      h.applyInputs(in);
      h.advancePs(periodPs);
      w.stepInto(in, wheelOut);
      if (h.sampleOutputs() != wheelOut) {
        std::cerr << "MISMATCH: wheel and heap engines disagree at cycle "
                  << t << "\n";
        return EXIT_FAILURE;
      }
    }
    if (h.eventsProcessed() != w.simulator().eventsProcessed()) {
      std::cerr << "MISMATCH: event counts differ (heap "
                << h.eventsProcessed() << ", wheel "
                << w.simulator().eventsProcessed() << ")\n";
      return EXIT_FAILURE;
    }
  }

  std::uint64_t checksum = 0;

  // Seed path: heap engine driven exactly like the seed ClockedSampler —
  // packOperands and sampleOutputs allocate every cycle.
  heap.applyInputs(circuits::packOperands(as[0], bs[0], false, 32));
  (void)heap.settlePs();
  const auto heapStart = Clock::now();
  for (std::uint64_t t = 1; t <= cycles; ++t) {
    heap.applyInputs(circuits::packOperands(as[t], bs[t], false, 32));
    heap.advancePs(periodPs);
    checksum += heap.sampleOutputs().back();
  }
  const double heapSec = secondsSince(heapStart);

  // Wheel path: allocation-free stepInto with reused buffers.
  std::vector<std::uint8_t> in;
  std::vector<std::uint8_t> out;
  circuits::packOperandsInto(as[0], bs[0], false, 32, in);
  wheel.initialize(in);
  const auto wheelStart = Clock::now();
  for (std::uint64_t t = 1; t <= cycles; ++t) {
    circuits::packOperandsInto(as[t], bs[t], false, 32, in);
    wheel.stepInto(in, out);
    checksum += out.back();
  }
  const double wheelSec = secondsSince(wheelStart);

  const auto total = static_cast<double>(cycles);
  const double heapRate = total / heapSec;
  const double wheelRate = total / wheelSec;
  const double speedup = heapRate > 0 ? wheelRate / heapRate : 0.0;
  const double eventsPerCycle =
      static_cast<double>(wheel.simulator().eventsProcessed()) / total;
  std::cout << "heap engine (seed):  " << heapSec << " s  ("
            << heapRate / 1e3 << " kcycles/s)\n"
            << "wheel engine:        " << wheelSec << " s  ("
            << wheelRate / 1e3 << " kcycles/s)\n"
            << "speedup:             " << speedup << "x\n"
            << "events/cycle:        " << eventsPerCycle << "\n"
            << "(checksum " << (checksum & 0xffff) << ")\n";

  bench::BenchJson json("micro_timed_sim");
  json.add("design", cfg.name())
      .add("gates", static_cast<std::uint64_t>(nl.gateCount()))
      .add("cycles", cycles)
      .add("period_ns", period)
      .add("cpr_percent", cpr)
      .add("heap_cycles_per_sec", heapRate)
      .add("wheel_cycles_per_sec", wheelRate)
      .add("events_per_cycle", eventsPerCycle);
  return bench::finishSpeedupBench(json, args, speedup, minSpeedup);
}
