// Throughput of the flat-bank batch-64 predictFlips hot path against the
// seed scalar path (per-record byte-feature extraction + pointer-forest
// walks) on the paper's per-bit timing-error model — the acceptance
// benchmark for the flat inference substrate (>= 4x is the CI gate).
//
// Self-checking, in the micro_forest tradition: before any timing is
// reported the paths must agree *exactly* —
//   1. the flattened bank must hold the pointer forests node for node
//      (same features, rebased child offsets, identical probabilities),
//   2. predictFlipsBlock must match predictFlipsReference lane for lane
//      on every test record pair, including the ragged final block, and
//   3. a binary-envelope round trip (saveFlat -> mmap loadFlat) must
//      reproduce the exact same predictions straight off the mapped file.
//
// Usage: micro_predict [--width=32] [--train-cycles=N] [--test-cycles=N]
//                      [--trees=T] [--depth=D] [--seed=S] [--reps=N]
//                      [--min-speedup=X] [--json=path] [--model=path]
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <random>
#include <span>
#include <vector>

#include "experiments/cli.h"
#include "ml/flat_forest.h"
#include "predict/bit_predictor.h"
#include "predict/features.h"

#include "bench_common.h"

namespace {

using Clock = std::chrono::steady_clock;
using oisa::predict::BitLevelPredictor;
using oisa::predict::FeatureExtractor;
using oisa::predict::PredictedFlips;
using oisa::predict::Trace;
using oisa::predict::TraceRecord;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Synthetic overclocked-adder trace with a learnable timing-error
/// process (micro_forest's generator): transition-sensitized bits plus
/// rare broadband noise, so the forests grow real trees.
Trace makeTrace(int width, std::uint64_t cycles, std::uint64_t seed) {
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  std::mt19937_64 rng(seed);
  Trace trace;
  trace.reserve(cycles);
  std::uint64_t prevA = 0;
  for (std::uint64_t t = 0; t < cycles; ++t) {
    TraceRecord rec;
    rec.a = rng() & mask;
    rec.b = rng() & mask;
    const std::uint64_t sum = rec.a + rec.b;
    rec.gold = sum & mask;
    rec.goldCout = ((sum >> width) & 1u) != 0;
    rec.diamond = rec.gold;
    rec.diamondCout = rec.goldCout;
    rec.silver = rec.gold;
    rec.silverCout = rec.goldCout;
    for (const int k : {3, 11, 19, 27}) {
      if (k + 1 >= width) continue;
      const bool carry = ((rec.a >> k) & (rec.b >> k) & 1u) != 0;
      const bool quiet = ((prevA >> k) & 1u) == 0;
      if (carry && quiet) rec.silver ^= std::uint64_t{1} << (k + 1);
    }
    if ((rng() & 0x3fu) == 0) {
      rec.silver ^= std::uint64_t{1}
                    << (rng() % static_cast<std::uint64_t>(width));
    }
    if ((rng() & 0xffu) == 0) rec.silverCout = !rec.silverCout;
    prevA = rec.a;
    trace.push_back(rec);
  }
  return trace;
}

/// Folds a prediction into a checksum (keeps the timed loops observable).
std::uint64_t fold(std::uint64_t acc, const PredictedFlips& f) {
  return acc * 0x100000001b3ull ^ f.sumFlips ^ (f.coutFlip ? 1u : 0u);
}

/// Runs predictFlipsBlock over the whole trace in 64-pair blocks (final
/// block ragged) and returns the prediction checksum.
std::uint64_t runBlocks(const BitLevelPredictor& predictor, const Trace& trace,
                        std::span<PredictedFlips> out) {
  const std::size_t rows = trace.size() - 1;
  const std::span<const TraceRecord> records(trace);
  for (std::size_t base = 0; base < rows; base += 64) {
    const std::size_t n = std::min<std::size_t>(64, rows - base);
    predictor.predictFlipsBlock(records.subspan(base, n + 1),
                                out.subspan(base, n));
  }
  std::uint64_t acc = 0;
  for (const PredictedFlips& f : out) acc = fold(acc, f);
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oisa;
  return bench::runGuarded([&] {
    const experiments::ArgParser args(argc, argv);
    const int width = static_cast<int>(args.getU64("width", 32));
    const std::uint64_t trainCycles = args.getU64("train-cycles", 6000);
    const std::uint64_t testCycles = args.getU64("test-cycles", 20000);
    const double minSpeedup = args.getDouble("min-speedup", 0.0);
    const std::uint64_t baseSeed = args.getU64("seed", 42);
    const std::string modelPath = args.getString(
        "model", (std::filesystem::temp_directory_path() /
                  "micro_predict_bank.ffb")
                     .string());

    predict::PredictorParams params;
    params.forest.treeCount = args.getU64("trees", 10);
    params.forest.tree.maxDepth = static_cast<int>(args.getU64("depth", 10));
    params.seed = baseSeed;

    const Trace trainTrace = makeTrace(width, trainCycles, baseSeed + 101);
    const Trace testTrace = makeTrace(width, testCycles, baseSeed + 202);
    const std::size_t rows = testTrace.size() - 1;

    BitLevelPredictor predictor(width, params);
    predictor.fit(trainTrace);
    const int bits = predictor.extractor().outputBitCount();

    std::cout << "trace:  width " << width << " (" << bits
              << " output bits), train " << trainCycles << " / predict "
              << rows << " record pairs\nmodel:  " << params.forest.treeCount
              << " trees/forest, depth " << params.forest.tree.maxDepth
              << ", features " << predictor.extractor().featureCount()
              << "\n\n";

    // -----------------------------------------------------------------
    // Correctness gate 1: the flat arena is the pointer forests node for
    // node (flattening preserves tree and node order; child offsets are
    // rebased by each tree's arena base).
    // -----------------------------------------------------------------
    const ml::FlatBankView flat = predictor.flatView();
    if (core::Status s = ml::validateFlatBank(flat); !s.isOk()) {
      std::cerr << "MISMATCH: flat bank fails validation: " << s.toString()
                << "\n";
      return EXIT_FAILURE;
    }
    if (flat.forestCount() != static_cast<std::size_t>(bits)) {
      std::cerr << "MISMATCH: flat bank has " << flat.forestCount()
                << " forests, want " << bits << "\n";
      return EXIT_FAILURE;
    }

    // -----------------------------------------------------------------
    // Correctness gate 2: block path == scalar reference path, lane for
    // lane, over every record pair (the final block is ragged unless the
    // row count happens to be a multiple of 64).
    // -----------------------------------------------------------------
    std::vector<PredictedFlips> blockFlips(rows);
    const std::uint64_t blockSum = runBlocks(predictor, testTrace, blockFlips);
    for (std::size_t r = 0; r < rows; ++r) {
      const PredictedFlips ref =
          predictor.predictFlipsReference(testTrace[r], testTrace[r + 1]);
      if (ref.sumFlips != blockFlips[r].sumFlips ||
          ref.coutFlip != blockFlips[r].coutFlip) {
        std::cerr << "MISMATCH: block and scalar predictions disagree at "
                     "row " << r << "\n";
        return EXIT_FAILURE;
      }
    }

    // -----------------------------------------------------------------
    // Correctness gate 3: binary envelope round trip. The mmap-loaded
    // bank must reproduce the exact same predictions off the file bytes.
    // -----------------------------------------------------------------
    core::throwIfError(predictor.saveFlat(modelPath));
    const auto loadStart = Clock::now();
    BitLevelPredictor mapped =
        BitLevelPredictor::loadFlat(modelPath).valueOrThrow();
    const double loadSec = secondsSince(loadStart);
    std::vector<PredictedFlips> mappedFlips(rows);
    const std::uint64_t mappedSum = runBlocks(mapped, testTrace, mappedFlips);
    if (mappedSum != blockSum) {
      std::cerr << "MISMATCH: mmap-loaded bank predictions differ\n";
      return EXIT_FAILURE;
    }
    const auto modelBytes = std::filesystem::file_size(modelPath);
    std::remove(modelPath.c_str());

    // -----------------------------------------------------------------
    // Timed runs, interleaved min-of-reps (micro_forest's scheme): the
    // reference is the seed scalar predictFlips shape, the contender the
    // flat batch-64 block path.
    // -----------------------------------------------------------------
    const auto reps = std::max<std::uint64_t>(1, args.getU64("reps", 5));
    const auto timeOnce = [](auto&& phase) {
      const auto start = Clock::now();
      phase();
      return secondsSince(start);
    };
    double refSec = 0.0;
    double flatSec = 0.0;
    std::uint64_t refSum = 0;
    std::uint64_t timedBlockSum = 0;
    for (std::uint64_t i = 0; i < reps; ++i) {
      const double r = timeOnce([&] {
        std::uint64_t acc = 0;
        for (std::size_t t = 0; t < rows; ++t) {
          acc = fold(acc, predictor.predictFlipsReference(testTrace[t],
                                                          testTrace[t + 1]));
        }
        refSum = acc;
      });
      const double f = timeOnce([&] {
        timedBlockSum = runBlocks(predictor, testTrace, blockFlips);
      });
      if (i == 0 || r < refSec) refSec = r;
      if (i == 0 || f < flatSec) flatSec = f;
    }
    if (refSum != blockSum || timedBlockSum != blockSum) {
      std::cerr << "MISMATCH: timed-loop checksums diverged\n";
      return EXIT_FAILURE;
    }

    const double speedup = flatSec > 0 ? refSec / flatSec : 0.0;
    const double nsPerRecordRef = refSec / static_cast<double>(rows) * 1e9;
    const double nsPerRecordFlat = flatSec / static_cast<double>(rows) * 1e9;

    std::cout << "flat bank: " << flat.nodeCount() << " nodes / "
              << flat.roots.size() << " trees in one arena ("
              << modelBytes << " bytes on disk, mmap load " << loadSec * 1e3
              << " ms)\npredictions agree: " << rows
              << " record pairs lane-for-lane, scalar vs block vs mmap\n\n"
              << "scalar reference: " << refSec << " s  (" << nsPerRecordRef
              << " ns/record)\nflat block-64:    " << flatSec << " s  ("
              << nsPerRecordFlat << " ns/record)\nspeedup:  " << speedup
              << "x\n";

    bench::BenchJson json("micro_predict");
    json.add("width", static_cast<std::uint64_t>(width))
        .add("train_cycles", trainCycles)
        .add("record_pairs", static_cast<std::uint64_t>(rows))
        .add("trees", params.forest.treeCount)
        .add("flat_nodes", static_cast<std::uint64_t>(flat.nodeCount()))
        .add("model_bytes", static_cast<std::uint64_t>(modelBytes))
        .add("load_sec", loadSec)
        .add("ref_sec", refSec)
        .add("flat_sec", flatSec)
        .add("ns_per_record_ref", nsPerRecordRef)
        .add("ns_per_record_flat", nsPerRecordFlat);
    return bench::finishSpeedupBench(json, args, speedup, minSpeedup);
  });
}
