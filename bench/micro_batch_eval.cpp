// Throughput of the word-parallel BatchEvaluator against the per-pattern
// scalar Evaluator on a 32-bit ISA netlist (the acceptance benchmark for
// the batch engine: >= 8x is expected; ~20-50x is typical since one
// 64-lane sweep costs about as much as one scalar sweep).
//
// Self-checking: both paths must produce identical outputs before any
// timing is reported, and the final checksum keeps the compiler honest.
//
// Usage: micro_batch_eval [--patterns=N] [--design=block,spec,corr,red]
//                         [--min-speedup=X] [--json=path]
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <random>
#include <vector>

#include "circuits/isa_netlist.h"
#include "core/isa_config.h"
#include "experiments/cli.h"
#include "netlist/batch_evaluator.h"
#include "netlist/evaluator.h"

#include "bench_common.h"

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const oisa::experiments::ArgParser args(argc, argv);
  const std::uint64_t patterns = args.getU64("patterns", 1u << 18);
  const double minSpeedup = args.getDouble("min-speedup", 0.0);

  const auto cfg = oisa::core::makeIsa(8, 2, 1, 4);  // 32-bit paper design
  const auto nl = oisa::circuits::buildIsaNetlist(cfg);
  const oisa::netlist::Evaluator scalar(nl);
  const oisa::netlist::BatchEvaluator batch(nl);
  const std::size_t inputCount = nl.primaryInputs().size();

  // Pre-generate the stimulus (lane-major words for the batch path, the
  // same bits unpacked per pattern for the scalar path) so both loops time
  // pure evaluation, not random-number generation.
  const std::uint64_t batches =
      (patterns + oisa::netlist::BatchEvaluator::kLanes - 1) /
      oisa::netlist::BatchEvaluator::kLanes;
  std::mt19937_64 rng(123);
  std::vector<std::vector<std::uint64_t>> batchInputs(batches);
  for (auto& words : batchInputs) {
    words.resize(inputCount);
    for (auto& w : words) w = rng();
  }

  std::cout << "netlist: " << cfg.name() << "  (" << nl.gateCount()
            << " gates, " << inputCount << " inputs)\n"
            << "patterns: " << batches * 64 << "\n\n";

  // Correctness gate: the batch path must agree with the scalar path.
  std::vector<std::uint8_t> in(inputCount);
  {
    const auto outWords = batch.evaluateOutputs(batchInputs[0]);
    for (const std::size_t lane : {std::size_t{0}, std::size_t{63}}) {
      for (std::size_t i = 0; i < inputCount; ++i) {
        in[i] = static_cast<std::uint8_t>((batchInputs[0][i] >> lane) & 1u);
      }
      const auto scalarOut = scalar.evaluateOutputs(in);
      for (std::size_t o = 0; o < scalarOut.size(); ++o) {
        if (((outWords[o] >> lane) & 1u) != scalarOut[o]) {
          std::cerr << "MISMATCH: batch and scalar disagree (lane " << lane
                    << ", output " << o << ")\n";
          return EXIT_FAILURE;
        }
      }
    }
  }

  // Pre-unpack the scalar path's byte vectors (flat buffer, one span per
  // pattern) so both timed loops measure pure evaluation.
  std::vector<std::uint8_t> scalarInputs(batches * 64 * inputCount);
  {
    std::size_t pattern = 0;
    for (const auto& words : batchInputs) {
      for (std::size_t lane = 0; lane < 64; ++lane, ++pattern) {
        std::uint8_t* dst = scalarInputs.data() + pattern * inputCount;
        for (std::size_t i = 0; i < inputCount; ++i) {
          dst[i] = static_cast<std::uint8_t>((words[i] >> lane) & 1u);
        }
      }
    }
  }

  std::uint64_t checksum = 0;

  const auto scalarStart = Clock::now();
  for (std::uint64_t p = 0; p < batches * 64; ++p) {
    const auto out = scalar.evaluateOutputs(
        {scalarInputs.data() + p * inputCount, inputCount});
    checksum += out.back();
  }
  const double scalarSec = secondsSince(scalarStart);

  const auto batchStart = Clock::now();
  std::vector<std::uint64_t> values;
  const auto outputs = nl.primaryOutputs();
  for (const auto& words : batchInputs) {
    batch.evaluateInto(words, values);
    checksum += values[outputs.back().value];
  }
  const double batchSec = secondsSince(batchStart);

  const double total = static_cast<double>(batches * 64);
  const double scalarRate = total / scalarSec;
  const double batchRate = total / batchSec;
  const double speedup = scalarRate > 0 ? batchRate / scalarRate : 0.0;
  std::cout << "scalar Evaluator:  " << scalarSec << " s  ("
            << scalarRate / 1e6 << " Mpatterns/s)\n"
            << "BatchEvaluator:    " << batchSec << " s  ("
            << batchRate / 1e6 << " Mpatterns/s)\n"
            << "speedup:           " << speedup << "x\n"
            << "(checksum " << (checksum & 0xffff) << ")\n";

  oisa::bench::BenchJson json("micro_batch_eval");
  json.add("design", cfg.name())
      .add("gates", static_cast<std::uint64_t>(nl.gateCount()))
      .add("patterns", batches * 64)
      .add("scalar_patterns_per_sec", scalarRate)
      .add("batch_patterns_per_sec", batchRate);
  return oisa::bench::finishSpeedupBench(json, args, speedup, minSpeedup);
}
