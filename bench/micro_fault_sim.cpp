// Throughput of the PPSFP fault engine (fault::PpsfpEngine, 64 patterns
// per sweep, cone-limited propagation) against the serial single-pattern
// reference (fault::SerialFaultSimulator, one full resimulation per
// (fault, pattern)) on a paper-scale 32-bit ISA design — the acceptance
// benchmark for the fault subsystem (>= 8x is the CI gate; the engine
// lands far above it, since it multiplies 64-lane words by cone-limited
// propagation).
//
// Self-checking: before any timing is reported, a sampled fault set is
// verified lane-for-lane against the serial reference (the full
// differential suite lives in tests/fault_sim_test.cpp).
//
// Usage: micro_fault_sim [--patterns=N] [--serial-faults=N]
//                        [--check-faults=N] [--min-speedup=X] [--json=path]
#include <bit>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <random>
#include <vector>

#include "circuits/synthesis.h"
#include "core/isa_config.h"
#include "experiments/cli.h"
#include "fault/coverage.h"
#include "fault/fault_universe.h"
#include "fault/ppsfp.h"
#include "fault/serial_fault_sim.h"
#include "netlist/compiled_netlist.h"
#include "timing/cell_library.h"

#include "bench_common.h"

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oisa;
  const experiments::ArgParser args(argc, argv);
  const std::uint64_t patterns = args.getU64("patterns", 4096);
  const std::size_t serialFaults =
      static_cast<std::size_t>(args.getU64("serial-faults", 192));
  const std::size_t checkFaults =
      static_cast<std::size_t>(args.getU64("check-faults", 200));
  const double minSpeedup = args.getDouble("min-speedup", 0.0);

  circuits::SynthesisOptions synth;
  synth.relaxSlack = true;  // the benches' default sign-off flow
  const auto design = circuits::synthesize(
      core::makeIsa(8, 2, 1, 4), timing::CellLibrary::generic65(), synth);
  const auto compiled = netlist::CompiledNetlist::compile(design.netlist);
  fault::FaultUniverse universe(compiled);
  fault::PpsfpEngine engine(compiled);
  fault::SerialFaultSimulator serial(compiled);

  std::cout << "design:    " << design.config.name() << "  ("
            << design.netlist.gateCount() << " gates, "
            << design.netlist.netCount() << " nets)\n"
            << "universe:  " << universe.all().size() << " faults -> "
            << universe.collapsed().size() << " collapsed classes\n"
            << "patterns:  " << patterns << "\n\n";

  const std::size_t inputCount = compiled->inputNets().size();
  std::mt19937_64 rng(12345);

  // Correctness gate: sampled faults, one 64-pattern block, every lane.
  {
    std::vector<std::uint64_t> words(inputCount);
    for (auto& w : words) w = rng();
    engine.loadPatterns(words);
    const auto checked = sampleFaults(universe.all(), checkFaults);
    std::vector<std::uint8_t> bits(inputCount);
    std::vector<std::uint64_t> detected(checked.size());
    for (std::size_t fi = 0; fi < checked.size(); ++fi) {
      detected[fi] = engine.detectLanes(checked[fi]);
    }
    for (std::size_t lane = 0; lane < 64; ++lane) {
      for (std::size_t i = 0; i < inputCount; ++i) {
        bits[i] = static_cast<std::uint8_t>((words[i] >> lane) & 1u);
      }
      serial.setPattern(bits);
      for (std::size_t fi = 0; fi < checked.size(); ++fi) {
        if (serial.detects(checked[fi]) !=
            (((detected[fi] >> lane) & 1u) != 0)) {
          std::cerr << "MISMATCH: PPSFP and serial reference disagree on "
                    << fault::describeFault(*compiled, checked[fi])
                    << " lane " << lane << "\n";
          return EXIT_FAILURE;
        }
      }
    }
    std::cout << "self-check: " << checked.size() << " faults x 64 patterns "
              << "match the serial reference\n\n";
  }

  // Serial reference rate: full resimulation per (fault, pattern).
  double serialSec = 0.0;
  std::uint64_t serialFp = 0;
  {
    const auto faults = sampleFaults(universe.all(), serialFaults);
    std::vector<std::uint64_t> words(inputCount);
    for (auto& w : words) w = rng();
    std::vector<std::uint8_t> bits(inputCount);
    std::uint64_t detections = 0;
    const auto start = Clock::now();
    for (std::size_t lane = 0; lane < 64; ++lane) {
      for (std::size_t i = 0; i < inputCount; ++i) {
        bits[i] = static_cast<std::uint8_t>((words[i] >> lane) & 1u);
      }
      serial.setPattern(bits);
      for (const auto& f : faults) {
        detections += serial.detects(f) ? 1 : 0;
      }
    }
    serialSec = secondsSince(start);
    serialFp = faults.size() * 64;
    std::cout << "serial reference:  " << faults.size() << " faults x 64 "
              << "patterns in " << serialSec << " s ("
              << static_cast<double>(serialFp) / serialSec / 1e3
              << " kfault-patterns/s, " << detections << " detections)\n";
  }

  // PPSFP rate: every collapsed class against every pattern block (no
  // dropping — raw engine throughput).
  double ppsfpSec = 0.0;
  std::uint64_t ppsfpFp = 0;
  {
    const auto classes = universe.collapsed();
    const std::uint64_t blocks = (patterns + 63) / 64;
    std::vector<std::uint64_t> words(inputCount);
    std::uint64_t detections = 0;
    const auto start = Clock::now();
    for (std::uint64_t blk = 0; blk < blocks; ++blk) {
      for (auto& w : words) w = rng();
      engine.loadPatterns(words);
      for (const auto& f : classes) {
        detections += std::popcount(engine.detectLanes(f));
      }
    }
    ppsfpSec = secondsSince(start);
    ppsfpFp = classes.size() * blocks * 64;
    std::cout << "PPSFP engine:      " << classes.size() << " classes x "
              << blocks * 64 << " patterns in " << ppsfpSec << " s ("
              << static_cast<double>(ppsfpFp) / ppsfpSec / 1e3
              << " kfault-patterns/s, " << detections
              << " lane detections)\n";
  }

  const double serialRate = static_cast<double>(serialFp) / serialSec;
  const double ppsfpRate = static_cast<double>(ppsfpFp) / ppsfpSec;
  const double speedup = serialRate > 0 ? ppsfpRate / serialRate : 0.0;
  std::cout << "speedup:           " << speedup << "x\n\n";

  // Campaign info (fault dropping on): the coverage this workload reaches.
  fault::CoverageOptions coverage;
  coverage.patterns = patterns;
  coverage.seed = 7;
  const auto cov = fault::runRandomCoverage(universe, engine, coverage);
  std::cout << "random-pattern coverage: " << cov.detectedClasses << " / "
            << cov.collapsedClasses << " classes ("
            << cov.coverage() * 100.0 << "% after " << cov.patternsApplied
            << " patterns)\n";

  oisa::bench::BenchJson json("micro_fault_sim");
  json.add("design", design.config.name())
      .add("gates", static_cast<std::uint64_t>(design.netlist.gateCount()))
      .add("universe_faults",
           static_cast<std::uint64_t>(universe.all().size()))
      .add("collapsed_classes",
           static_cast<std::uint64_t>(universe.collapsed().size()))
      .add("patterns", patterns)
      .add("serial_fault_patterns_per_sec", serialRate)
      .add("ppsfp_fault_patterns_per_sec", ppsfpRate)
      .add("coverage_percent", cov.coverage() * 100.0);
  return oisa::bench::finishSpeedupBench(json, args, speedup, minSpeedup);
}
