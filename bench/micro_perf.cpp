// Google-benchmark microbenchmarks: throughput of the substrates that the
// figure pipelines stress — behavioral ISA addition, zero-delay netlist
// evaluation, event-driven overclocked sampling, STA, and forest inference.
#include <benchmark/benchmark.h>

#include <random>

#include "circuits/synthesis.h"
#include "core/isa_adder.h"
#include "ml/random_forest.h"
#include "netlist/evaluator.h"
#include "timing/event_sim.h"
#include "timing/sta.h"

namespace {

using oisa::circuits::packOperands;
using oisa::timing::CellLibrary;

const oisa::circuits::SynthesizedDesign& design804() {
  static const auto d = oisa::circuits::synthesize(
      oisa::core::makeIsa(8, 0, 0, 4), CellLibrary::generic65(),
      oisa::circuits::SynthesisOptions{});
  return d;
}

void BM_BehavioralIsaAdd(benchmark::State& state) {
  const oisa::core::IsaAdder isa(oisa::core::makeIsa(8, 0, 0, 4));
  std::mt19937_64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa.add(rng(), rng()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BehavioralIsaAdd);

void BM_BehavioralExactAdd(benchmark::State& state) {
  const oisa::core::IsaAdder isa(oisa::core::makeExact(32));
  std::mt19937_64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa.add(rng(), rng()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BehavioralExactAdd);

void BM_ZeroDelayNetlistEval(benchmark::State& state) {
  const auto& d = design804();
  const oisa::netlist::Evaluator eval(d.netlist);
  std::mt19937_64 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eval.evaluateOutputs(packOperands(rng(), rng(), false, 32)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZeroDelayNetlistEval);

void BM_OverclockedSamplerStep(benchmark::State& state) {
  const auto& d = design804();
  const double period = 0.3 * (1.0 - static_cast<double>(state.range(0)) / 100.0);
  oisa::timing::ClockedSampler sampler(d.netlist, d.delays, period);
  std::mt19937_64 rng(3);
  sampler.initialize(packOperands(rng(), rng(), false, 32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sampler.step(packOperands(rng(), rng(), false, 32)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OverclockedSamplerStep)->Arg(0)->Arg(5)->Arg(15);

void BM_StaticTimingAnalysis(benchmark::State& state) {
  const auto& d = design804();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        oisa::timing::analyze(d.netlist, d.delays, 0.3));
  }
}
BENCHMARK(BM_StaticTimingAnalysis);

void BM_SynthesizeDesign(benchmark::State& state) {
  const CellLibrary lib = CellLibrary::generic65();
  for (auto _ : state) {
    benchmark::DoNotOptimize(oisa::circuits::synthesize(
        oisa::core::makeIsa(16, 2, 1, 6), lib,
        oisa::circuits::SynthesisOptions{}));
  }
}
BENCHMARK(BM_SynthesizeDesign);

void BM_ForestInference(benchmark::State& state) {
  // A forest trained on synthetic transition-rule data, sized like the
  // per-bit timing models.
  oisa::ml::Dataset data(130);
  std::mt19937_64 rng(5);
  std::vector<std::uint8_t> row(130);
  for (int i = 0; i < 4000; ++i) {
    for (auto& v : row) v = static_cast<std::uint8_t>(rng() & 1);
    data.addRow(row, (row[0] & ~row[65]) != 0);
  }
  oisa::ml::RandomForest forest;
  oisa::ml::ForestParams params;
  params.treeCount = 10;
  forest.fit(data, params, 1);
  for (auto _ : state) {
    for (auto& v : row) v = static_cast<std::uint8_t>(rng() & 1);
    benchmark::DoNotOptimize(forest.predict(row));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ForestInference);

}  // namespace

BENCHMARK_MAIN();
