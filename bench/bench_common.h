// Shared helpers for the figure-regeneration benches.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "circuits/synthesis.h"
#include "experiments/cli.h"
#include "experiments/report.h"
#include "timing/cell_library.h"

namespace oisa::bench {

/// Paper CPR points (percent of the 0.3 ns sign-off period).
inline const std::vector<double>& paperCprs() {
  static const std::vector<double> cprs = {5.0, 10.0, 15.0};
  return cprs;
}

/// Synthesizes the twelve paper designs with CLI-controlled options.
/// The power-recovery (slack-relaxation) pass is ON by default — the
/// paper's circuits were synthesized by a commercial tool that trades all
/// positive slack for power, which is what exposes them to overclocking;
/// pass --relax=false for raw structural timing.
inline std::vector<circuits::SynthesizedDesign> synthesizeAll(
    const experiments::ArgParser& args) {
  circuits::SynthesisOptions options;
  options.relaxSlack = args.getBool("relax", true);
  options.relaxation.maxSlowdown =
      args.getDouble("max-slowdown", options.relaxation.maxSlowdown);
  return circuits::synthesizePaperDesigns(timing::CellLibrary::generic65(),
                                          options);
}

/// Prints the table and, when --csv=<path> is given, also writes a CSV.
inline void emit(const experiments::Table& table,
                 const experiments::ArgParser& args) {
  table.print(std::cout);
  const std::string csv = args.getString("csv", "");
  if (!csv.empty()) {
    table.writeCsvFile(csv);
    std::cout << "\n(csv written to " << csv << ")\n";
  }
}

}  // namespace oisa::bench
