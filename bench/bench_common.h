// Shared helpers for the figure-regeneration benches.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "circuits/synthesis.h"
#include "core/status.h"
#include "core/subprocess.h"
#include "experiments/cli.h"
#include "experiments/grid_scheduler.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "netlist/lane_width.h"
#include "obs/metrics.h"
#include "obs/run_meta.h"
#include "obs/span.h"
#include "timing/cell_library.h"

namespace oisa::bench {

/// `--threads=N` worker-thread count for grid sweeps (0 = hardware
/// concurrency, the default). Results are bit-identical at any value.
inline unsigned threadsOption(const experiments::ArgParser& args) {
  return static_cast<unsigned>(args.getU64("threads", 0));
}

/// Crash-safety CLI surface shared by every grid bench:
///   --checkpoint=path        snapshot completed cells to `path`
///   --resume                 adopt an existing snapshot before running
///   --checkpoint-every=N     autosave cadence in cells (default 8; 0 is
///                            rejected — it would disable autosaving the
///                            flag exists to provide)
///   --retries=N              per-cell attempts on transient failure
///   --deadline=S             wall-clock budget in seconds (0 = none)
///   --progress               periodic one-line progress heartbeat on
///                            stderr (cells done/total, retries, ETA)
/// Resumed campaigns are byte-identical to uninterrupted ones.
inline void applyRobustnessOptions(const experiments::ArgParser& args,
                                   experiments::RunOptions& run) {
  run.checkpoint.path = args.getString("checkpoint", "");
  run.checkpoint.resume = args.getBool("resume", false);
  run.checkpoint.everyCells = args.getPositiveU64("checkpoint-every", 8);
  run.cellAttempts = static_cast<unsigned>(args.getU64("retries", 1));
  run.deadlineSeconds = args.getDouble("deadline", 0.0);
  run.progress = args.getBool("progress", false);
}

/// Model persistence flags of the prediction benches (fig7/fig8):
///   --model-out=base   after fitting, save each cell's flat bank as
///                      binary envelope v2 at <base>.<design>.cpr<N>.ffb
///   --model-in=base    mmap-load each cell's bank from the same scheme
///                      instead of collecting a training trace — rows
///                      (and CSVs) are byte-identical to the trained run
/// Both forward to shard workers: every worker owns its cells' banks.
inline void applyModelOptions(const experiments::ArgParser& args,
                              experiments::PredictionOptions& options) {
  options.modelOut = args.getString("model-out", "");
  options.modelIn = args.getString("model-in", "");
}

/// Observability CLI surface shared by every figure/fault bench:
///   --metrics-out=FILE  write the metrics registry snapshot as JSON
///                       (schema oisa-metrics-v1) at exit; the registry
///                       itself is always on (sharded fleet rollups need
///                       it flag-free) — the flag only adds the artifact
///   --trace-out=FILE    record RAII spans into the bounded ring; write
///                       Chrome trace-event JSON (open in Perfetto) at exit
///   --events-out=FILE   supervisor-side JSONL fleet lifecycle log
///   --trace-buffer=N    span ring capacity in events (default 65536;
///                       overflow drops events and counts the drops)
/// Telemetry is side-effect-only by construction: every CSV and table is
/// byte-identical with and without these flags (cross-check #11 in
/// ARCHITECTURE.md; enforced by a cmp in CI).
struct ObsContext {
  std::string metricsOut;
  std::string traceOut;
  std::string eventsOut;
};

/// Parses the obs flags and arms the requested sinks. Call before the
/// campaign body so spans/counters from the run land in the artifacts.
inline ObsContext beginObs(const experiments::ArgParser& args) {
  ObsContext ctx;
  ctx.metricsOut = args.getString("metrics-out", "");
  ctx.traceOut = args.getString("trace-out", "");
  ctx.eventsOut = args.getString("events-out", "");
  if (!ctx.traceOut.empty()) {
    obs::startTracing(
        static_cast<std::size_t>(args.getPositiveU64("trace-buffer", 65536)));
  }
  return ctx;
}

/// What setupSharding decided this process is.
struct ShardContext {
  /// False in shard workers: they compute and checkpoint, the supervisor
  /// process prints the tables/CSV after the merge.
  bool emitOutput = true;
  /// Set in the supervisor after runShardSupervisor finished.
  std::optional<experiments::ShardReport> report;
  /// Owned by the context in worker mode; run.heartbeat points at it.
  std::unique_ptr<experiments::HeartbeatEmitter> heartbeat;
};

/// Forwards this invocation's argv to a shard worker, minus everything
/// the supervisor owns (shard topology, checkpoint/resume plumbing,
/// output paths) — the supervisor re-appends those per shard. Workers
/// that were not given --threads default to a fair share of the machine
/// so N shards do not oversubscribe it N times.
inline std::vector<std::string> forwardedWorkerArgs(
    const experiments::ArgParser& args, unsigned shards) {
  static const std::set<std::string> kSupervisorOnly = {
      "shards",      "shard-worker", "shard-strikes", "shard-timeout",
      "shard-backoff", "quarantine", "checkpoint",    "resume",
      "csv",         "json",         "progress",      "threads",
      "metrics-out", "trace-out",    "events-out"};
  std::vector<std::string> out;
  for (const auto& [key, value] : args.all()) {
    if (kSupervisorOnly.count(key) != 0) continue;
    out.push_back("--" + key + "=" + value);
  }
  unsigned threads = static_cast<unsigned>(args.getU64("threads", 0));
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    threads = (hw + shards - 1) / shards;
  }
  out.push_back("--threads=" + std::to_string(threads));
  return out;
}

/// Multi-process campaign execution (experiments/shard.h). Three modes:
///
///   --shard-worker=i/N   this process is a supervised worker: compute
///                        the slice's cells into <checkpoint>.shard<i>,
///                        report over the heartbeat pipe, emit nothing;
///   --shards=N (N > 1)   supervise N workers (spawn/monitor/restart/
///                        quarantine), merge their snapshots into the
///                        base checkpoint, then fall through and run the
///                        campaign in-process with --resume — every
///                        surviving cell is served from the merged
///                        snapshot, so the output is byte-identical to
///                        an unsharded run and goes through the
///                        identical emission path;
///   neither              plain single-process run (ctx is inert).
///
/// `cellCount` is the full campaign grid size (designs × CPR points).
/// Throws StatusError on bad shard flags or a failed supervision run.
inline ShardContext setupSharding(const experiments::ArgParser& args,
                                  const char* argv0,
                                  experiments::RunOptions& run,
                                  std::size_t cellCount) {
  ShardContext ctx;
  const std::string workerSpec = args.getString("shard-worker", "");
  if (!workerSpec.empty()) {
    const auto spec =
        experiments::ShardWorkerSpec::parse(workerSpec).valueOrThrow();
    const std::string base = args.getString("checkpoint", "");
    if (base.empty()) {
      throw core::StatusError(core::Status::invalidInput(
          "--shard-worker requires --checkpoint=<path> (the shard snapshot "
          "derives from it)"));
    }
    run.shard.index = spec.index;
    run.shard.count = spec.count;
    run.shard.skipCells =
        experiments::parseCellList(args.getString("quarantine", ""))
            .valueOrThrow();
    // Private snapshot, keyed by *global* cell index with the full-grid
    // shape and fingerprint — that is what makes shard snapshots
    // merge-compatible with each other and with the base.
    run.checkpoint.path = experiments::shardCheckpointPath(base, spec.index);
    run.checkpoint.resume = true;  // restarts adopt the previous attempt
    run.progress = false;          // the supervisor owns the terminal
    ctx.heartbeat = experiments::HeartbeatEmitter::fromEnv();
    run.heartbeat = ctx.heartbeat.get();
    ctx.emitOutput = false;
    return ctx;
  }
  const unsigned shards =
      static_cast<unsigned>(args.getPositiveU64("shards", 1));
  if (shards <= 1) return ctx;
  if (run.checkpoint.path.empty()) {
    throw core::StatusError(core::Status::invalidInput(
        "--shards requires --checkpoint=<path> (shard results merge "
        "through it)"));
  }
  experiments::ShardSupervisorOptions sup;
  sup.shards = shards;
  sup.binary = core::selfExecutablePath(argv0);
  sup.workerArgs = forwardedWorkerArgs(args, shards);
  sup.checkpointBase = run.checkpoint.path;
  sup.resumeBase = run.checkpoint.resume;
  sup.cellCount = cellCount;
  sup.maxCellStrikes =
      static_cast<unsigned>(args.getPositiveU64("shard-strikes", 3));
  sup.heartbeatTimeoutSec = args.getDouble("shard-timeout", 30.0);
  sup.restartBackoffMs = args.getU64("shard-backoff", 200);
  sup.progress = run.progress;
  // Fleet observability: the supervisor keeps the aggregate artifacts
  // (events log, merged metrics with the fleet rollup) and hands every
  // worker a private --metrics-out/--trace-out derived from the same base
  // so per-shard JSON lands next to the supervisor's.
  sup.eventLogPath = args.getString("events-out", "");
  sup.workerMetricsBase = args.getString("metrics-out", "");
  sup.workerTraceBase = args.getString("trace-out", "");
  ctx.report = experiments::runShardSupervisor(sup).valueOrThrow();
  // Final in-process pass over the *whole* grid: --resume against the
  // merged snapshot serves every completed cell; only quarantined cells
  // are skipped (their rows stay empty and the emitters drop them).
  run.checkpoint.resume = true;
  run.shard = {};
  for (const auto& q : ctx.report->quarantined) {
    run.shard.skipCells.push_back(q.cell);
  }
  std::sort(run.shard.skipCells.begin(), run.shard.skipCells.end());
  return ctx;
}

/// Writes the per-process telemetry artifacts. Call at the end of every
/// bench main, *before* the worker-mode early return — shard workers
/// write their own metrics/trace files (the supervisor pointed them at
/// <base>.shard<i>) even though they emit no tables. The heartbeat flush
/// runs first so the supervisor's fleet rollup and this worker's metrics
/// file agree exactly on a clean run (nothing increments counters between
/// the flush and the snapshot).
inline void writeObsArtifacts(const ObsContext& obsCtx,
                              const ShardContext& shard) {
  if (shard.heartbeat != nullptr) shard.heartbeat->metricsFlush();
  if (!obsCtx.metricsOut.empty()) {
    const std::map<std::string, std::uint64_t>* fleet =
        shard.report.has_value() && !shard.report->fleetCounters.empty()
            ? &shard.report->fleetCounters
            : nullptr;
    if (const core::Status s =
            obs::writeMetricsJson(obsCtx.metricsOut, obs::runMetadata(), fleet);
        !s.isOk()) {
      std::cerr << "warning: " << s.toString() << "\n";
    } else {
      std::cerr << "(metrics written to " << obsCtx.metricsOut << ")\n";
    }
  }
  if (!obsCtx.traceOut.empty()) {
    // Drain before stopTracing — stopping retires the ring.
    if (const core::Status s = obs::writeTraceJson(obsCtx.traceOut);
        !s.isOk()) {
      std::cerr << "warning: " << s.toString() << "\n";
    } else {
      std::cerr << "(trace written to " << obsCtx.traceOut << ")\n";
    }
    obs::stopTracing();
  }
}

/// Human-readable tail of a supervised campaign: what was restarted,
/// quarantined, or absolved (on stderr, after the tables), plus the
/// fleet-wide counter rollup streamed over the heartbeat pipes.
inline void printShardReport(const ShardContext& ctx) {
  if (!ctx.report.has_value()) return;
  const experiments::ShardReport& r = *ctx.report;
  std::cerr << "shards: " << r.cellsDone << " cell completion(s) observed, "
            << r.restarts << " worker restart(s)\n";
  for (const auto& [name, value] : r.fleetCounters) {
    std::cerr << "  fleet " << name << " = " << value << "\n";
  }
  for (const experiments::QuarantinedCell& q : r.quarantined) {
    std::cerr << "  quarantined cell " << q.cell << " (shard " << q.shard
              << "): worker died with " << q.lastExit.toString()
              << (q.stalled ? " after a heartbeat stall" : "") << ", "
              << q.strikes << " strike(s) — row omitted\n";
  }
  for (const std::uint64_t cell : r.absolved) {
    std::cerr << "  absolved cell " << cell
              << ": completed despite strikes (lost heartbeat)\n";
  }
}

/// Minimal machine-readable bench emitter: one flat JSON object per file,
/// so CI can track the perf trajectory across PRs (BENCH_timed.json,
/// BENCH_batch.json, ...).
class BenchJson {
 public:
  explicit BenchJson(std::string benchName) { add("bench", benchName); }

  BenchJson& add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, '"' + value + '"');
    return *this;
  }
  BenchJson& add(const std::string& key, double value) {
    std::ostringstream os;
    os << value;
    fields_.emplace_back(key, os.str());
    return *this;
  }
  BenchJson& add(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }

  [[nodiscard]] std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += '"' + fields_[i].first + "\": " + fields_[i].second;
    }
    return out + "}\n";
  }

  /// Writes the object to `path` when non-empty (the `--json=path` flag).
  void writeFile(const std::string& path) const {
    if (path.empty()) return;
    std::ofstream os(path);
    os << str();
    std::cout << "(json written to " << path << ")\n";
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Run-provenance fields for every BENCH_*.json artifact: commit, host,
/// lane engine, thread count — the facts that make a perf number from CI
/// attributable weeks later.
inline void addRunMetadata(BenchJson& json,
                           const experiments::ArgParser& args) {
  for (const auto& [key, value] : obs::runMetadata()) {
    json.add(key, value);
  }
  json.add("lane_selection",
           netlist::laneSelectionName(netlist::selectLaneWidth()));
  unsigned threads = threadsOption(args);
  if (threads == 0) threads = std::thread::hardware_concurrency();
  json.add("threads", static_cast<std::uint64_t>(threads));
}

/// Shared epilogue of every speedup microbench (the BENCH_*.json
/// writers): records the headline `speedup` field plus run metadata,
/// writes the `--json` artifact when requested, and enforces the
/// `--min-speedup` CI gate. Returns the process exit code for main().
inline int finishSpeedupBench(BenchJson& json,
                              const experiments::ArgParser& args,
                              double speedup, double minSpeedup) {
  json.add("speedup", speedup);
  addRunMetadata(json, args);
  json.writeFile(args.getString("json", ""));
  if (minSpeedup > 0.0 && speedup < minSpeedup) {
    std::cerr << "FAIL: speedup " << speedup << "x below required "
              << minSpeedup << "x\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}

/// Top-level error boundary for the bench mains: runs `body` and turns
/// typed failures into a readable report + EXIT_FAILURE instead of an
/// unhandled-exception abort. GridError gets the full per-cell breakdown
/// (cell index, cause, attempts) so a failed campaign is diagnosable
/// from the log alone.
template <typename Fn>
int runGuarded(Fn&& body) {
  try {
    return body();
  } catch (const experiments::GridError& e) {
    std::cerr << "error: " << e.what() << '\n';
    for (const auto& f : e.failures()) {
      std::cerr << "  cell " << f.cell << ": " << f.status.toString()
                << " (after " << f.attempts << " attempt"
                << (f.attempts == 1 ? "" : "s") << ")\n";
    }
    if (e.cancelled()) {
      std::cerr << "  cancelled: " << e.cellsNotRun()
                << " cell(s) never claimed\n";
    }
    std::cerr << "(completed cells are in the checkpoint when --checkpoint "
                 "was given; rerun with --resume)\n";
    return EXIT_FAILURE;
  } catch (const core::StatusError& e) {
    std::cerr << "error: " << e.status().toString() << '\n';
    return EXIT_FAILURE;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return EXIT_FAILURE;
  }
}

/// Paper CPR points (percent of the 0.3 ns sign-off period).
inline const std::vector<double>& paperCprs() {
  static const std::vector<double> cprs = {5.0, 10.0, 15.0};
  return cprs;
}

/// Synthesizes the twelve paper designs with CLI-controlled options.
/// The power-recovery (slack-relaxation) pass is ON by default — the
/// paper's circuits were synthesized by a commercial tool that trades all
/// positive slack for power, which is what exposes them to overclocking;
/// pass --relax=false for raw structural timing.
inline std::vector<circuits::SynthesizedDesign> synthesizeAll(
    const experiments::ArgParser& args) {
  circuits::SynthesisOptions options;
  options.relaxSlack = args.getBool("relax", true);
  options.relaxation.maxSlowdown =
      args.getDouble("max-slowdown", options.relaxation.maxSlowdown);
  return circuits::synthesizePaperDesigns(timing::CellLibrary::generic65(),
                                          options);
}

/// Prints the table and, when --csv=<path> is given, also writes a CSV.
inline void emit(const experiments::Table& table,
                 const experiments::ArgParser& args) {
  table.print(std::cout);
  const std::string csv = args.getString("csv", "");
  if (!csv.empty()) {
    table.writeCsvFile(csv);
    std::cout << "\n(csv written to " << csv << ")\n";
  }
}

}  // namespace oisa::bench
