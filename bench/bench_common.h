// Shared helpers for the figure-regeneration benches.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "circuits/synthesis.h"
#include "core/status.h"
#include "experiments/cli.h"
#include "experiments/grid_scheduler.h"
#include "experiments/report.h"
#include "experiments/runner.h"
#include "timing/cell_library.h"

namespace oisa::bench {

/// `--threads=N` worker-thread count for grid sweeps (0 = hardware
/// concurrency, the default). Results are bit-identical at any value.
inline unsigned threadsOption(const experiments::ArgParser& args) {
  return static_cast<unsigned>(args.getU64("threads", 0));
}

/// Crash-safety CLI surface shared by every grid bench:
///   --checkpoint=path        snapshot completed cells to `path`
///   --resume                 adopt an existing snapshot before running
///   --checkpoint-every=N     autosave cadence in cells (default 8)
///   --retries=N              per-cell attempts on transient failure
///   --deadline=S             wall-clock budget in seconds (0 = none)
/// Resumed campaigns are byte-identical to uninterrupted ones.
inline void applyRobustnessOptions(const experiments::ArgParser& args,
                                   experiments::RunOptions& run) {
  run.checkpoint.path = args.getString("checkpoint", "");
  run.checkpoint.resume = args.getBool("resume", false);
  run.checkpoint.everyCells = args.getU64("checkpoint-every", 8);
  run.cellAttempts = static_cast<unsigned>(args.getU64("retries", 1));
  run.deadlineSeconds = args.getDouble("deadline", 0.0);
}

/// Minimal machine-readable bench emitter: one flat JSON object per file,
/// so CI can track the perf trajectory across PRs (BENCH_timed.json,
/// BENCH_batch.json, ...).
class BenchJson {
 public:
  explicit BenchJson(std::string benchName) { add("bench", benchName); }

  BenchJson& add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, '"' + value + '"');
    return *this;
  }
  BenchJson& add(const std::string& key, double value) {
    std::ostringstream os;
    os << value;
    fields_.emplace_back(key, os.str());
    return *this;
  }
  BenchJson& add(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }

  [[nodiscard]] std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += '"' + fields_[i].first + "\": " + fields_[i].second;
    }
    return out + "}\n";
  }

  /// Writes the object to `path` when non-empty (the `--json=path` flag).
  void writeFile(const std::string& path) const {
    if (path.empty()) return;
    std::ofstream os(path);
    os << str();
    std::cout << "(json written to " << path << ")\n";
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Shared epilogue of every speedup microbench (the BENCH_*.json
/// writers): records the headline `speedup` field, writes the `--json`
/// artifact when requested, and enforces the `--min-speedup` CI gate.
/// Returns the process exit code for main().
inline int finishSpeedupBench(BenchJson& json,
                              const experiments::ArgParser& args,
                              double speedup, double minSpeedup) {
  json.add("speedup", speedup);
  json.writeFile(args.getString("json", ""));
  if (minSpeedup > 0.0 && speedup < minSpeedup) {
    std::cerr << "FAIL: speedup " << speedup << "x below required "
              << minSpeedup << "x\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}

/// Top-level error boundary for the bench mains: runs `body` and turns
/// typed failures into a readable report + EXIT_FAILURE instead of an
/// unhandled-exception abort. GridError gets the full per-cell breakdown
/// (cell index, cause, attempts) so a failed campaign is diagnosable
/// from the log alone.
template <typename Fn>
int runGuarded(Fn&& body) {
  try {
    return body();
  } catch (const experiments::GridError& e) {
    std::cerr << "error: " << e.what() << '\n';
    for (const auto& f : e.failures()) {
      std::cerr << "  cell " << f.cell << ": " << f.status.toString()
                << " (after " << f.attempts << " attempt"
                << (f.attempts == 1 ? "" : "s") << ")\n";
    }
    if (e.cancelled()) {
      std::cerr << "  cancelled: " << e.cellsNotRun()
                << " cell(s) never claimed\n";
    }
    std::cerr << "(completed cells are in the checkpoint when --checkpoint "
                 "was given; rerun with --resume)\n";
    return EXIT_FAILURE;
  } catch (const core::StatusError& e) {
    std::cerr << "error: " << e.status().toString() << '\n';
    return EXIT_FAILURE;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return EXIT_FAILURE;
  }
}

/// Paper CPR points (percent of the 0.3 ns sign-off period).
inline const std::vector<double>& paperCprs() {
  static const std::vector<double> cprs = {5.0, 10.0, 15.0};
  return cprs;
}

/// Synthesizes the twelve paper designs with CLI-controlled options.
/// The power-recovery (slack-relaxation) pass is ON by default — the
/// paper's circuits were synthesized by a commercial tool that trades all
/// positive slack for power, which is what exposes them to overclocking;
/// pass --relax=false for raw structural timing.
inline std::vector<circuits::SynthesizedDesign> synthesizeAll(
    const experiments::ArgParser& args) {
  circuits::SynthesisOptions options;
  options.relaxSlack = args.getBool("relax", true);
  options.relaxation.maxSlowdown =
      args.getDouble("max-slowdown", options.relaxation.maxSlowdown);
  return circuits::synthesizePaperDesigns(timing::CellLibrary::generic65(),
                                          options);
}

/// Prints the table and, when --csv=<path> is given, also writes a CSV.
inline void emit(const experiments::Table& table,
                 const experiments::ArgParser& args) {
  table.print(std::cout);
  const std::string csv = args.getString("csv", "");
  if (!csv.empty()) {
    table.writeCsvFile(csv);
    std::cout << "\n(csv written to " << csv << ")\n";
  }
}

}  // namespace oisa::bench
