// Defect-aware error scan across the twelve paper designs: stuck-at fault
// coverage of each synthesized netlist under the experiment workload
// (PPSFP, collapsed universe, fault dropping), plus the E_joint shift a
// sampled detected defect adds on top of the healthy structural+timing
// error under overclocked sampling — the paper's two error sources joined
// by the missing third one.
//
// Usage: fault_coverage [--cycles=N] [--seed=S] [--workload=uniform]
//                       [--cpr=15] [--timed-cycles=N] [--timed-faults=N]
//                       [--threads=N] [--relax] [--checkpoint=path]
//                       [--resume] [--checkpoint-every=N] [--retries=N]
//                       [--deadline=S] [--progress] [--shards=N]
//                       [--shard-strikes=K] [--shard-timeout=S]
//                       [--csv=path] [--trace-out=f] [--metrics-out=f]
//                       [--events-out=f]
#include <iostream>

#include "experiments/fault_scan.h"
#include "experiments/report.h"
#include "experiments/trace_collector.h"

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace oisa;
  return bench::runGuarded([&]() -> int {
  const experiments::ArgParser args(argc, argv);
  const auto obsCtx = bench::beginObs(args);
  const auto designs = bench::synthesizeAll(args);

  experiments::FaultScanOptions options;
  options.run.cycles = args.getU64("cycles", 16384);
  options.run.seed = args.getU64("seed", 42);
  options.run.workload = args.getString("workload", "uniform");
  options.run.threads = bench::threadsOption(args);
  bench::applyRobustnessOptions(args, options.run);
  options.cprPercent = args.getDouble("cpr", 15.0);
  options.timedCycles = args.getU64("timed-cycles", 8192);
  options.timedFaults =
      static_cast<std::size_t>(args.getU64("timed-faults", 8));
  const auto shard =
      bench::setupSharding(args, argv[0], options.run, designs.size());

  const auto rows = runFaultErrorScan(designs, options);
  bench::writeObsArtifacts(obsCtx, shard);
  if (!shard.emitOutput) return 0;  // worker: the supervisor prints

  std::cout << "== Stuck-at coverage + defect-aware E_joint shift ==\n"
            << "(coverage: " << options.run.cycles << " "
            << options.run.workload << " patterns through the PPSFP engine; "
            << "timed phase: " << options.timedFaults
            << " detected stem defects x " << options.timedCycles
            << " cycles @ " << options.cprPercent << "% CPR)\n\n";

  experiments::Table table({"design", "faults", "classes", "detected",
                            "coverage[%]", "joint-healthy[%]",
                            "joint-defective[%]", "shift[%]"});
  for (const auto& row : rows) {
    if (row.design.empty()) continue;  // quarantined cell: row omitted
    table.addRow(
        {row.design, std::to_string(row.universeFaults),
         std::to_string(row.collapsedClasses),
         std::to_string(row.detectedClasses),
         experiments::formatFixed(row.coveragePercent, 2),
         experiments::formatSci(
             experiments::displayFloor(row.rmsRelJointHealthy * 100.0), 3),
         experiments::formatSci(
             experiments::displayFloor(row.rmsRelJointFaulty * 100.0), 3),
         experiments::formatSci(
             experiments::displayFloor(row.eJointShift * 100.0), 3)});
  }
  table.print(std::cout);

  experiments::Table csv(
      {"design", "universe_faults", "collapsed_classes", "detected_classes",
       "coverage_percent", "patterns", "cpr_percent", "period_ns",
       "rms_rel_joint_healthy", "rms_rel_joint_faulty", "e_joint_shift",
       "worst_rel_joint_faulty", "timed_faults"});
  for (const auto& row : rows) {
    if (row.design.empty()) continue;  // quarantined cell: row omitted
    csv.addRow({row.design, std::to_string(row.universeFaults),
                std::to_string(row.collapsedClasses),
                std::to_string(row.detectedClasses),
                experiments::formatFixed(row.coveragePercent, 3),
                std::to_string(row.patterns),
                experiments::formatFixed(row.cprPercent, 1),
                experiments::formatFixed(row.periodNs, 4),
                experiments::formatSci(row.rmsRelJointHealthy, 6),
                experiments::formatSci(row.rmsRelJointFaulty, 6),
                experiments::formatSci(row.eJointShift, 6),
                experiments::formatSci(row.worstRelJointFaulty, 6),
                std::to_string(row.timedFaultsMeasured)});
  }
  const std::string csvPath = args.getString("csv", "");
  if (!csvPath.empty()) {
    csv.writeCsvFile(csvPath);
    std::cout << "\n(csv written to " << csvPath << ")\n";
  }
  bench::printShardReport(shard);
  return 0;
  });
}
